"""Property-based cross-backend guarantees for the array engine.

Random operating points (shape, algorithm, pattern, load, buffer
depth, message lengths, seed) must satisfy:

* a :class:`BatchSimulator` batch of size 1 returns exactly the same
  ``SimulationResult.to_dict()`` as a solo array-backend run;
* a batched sweep returns per-point results — and therefore sweep
  aggregates — identical to running each point alone on the event
  engine;
* arbitrary fault plans combined with any congestion-aware selection
  policy, watchdog/retry settings, and collectors — the widened
  vectorized envelope — batched in arbitrary compositions still match
  per-point event-engine runs exactly.
"""

import dataclasses

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

pytest.importorskip("numpy")

from repro.analysis.runner import make_pattern, parse_topology_spec  # noqa: E402
from repro.faults.plan import FaultEvent, FaultPlan  # noqa: E402
from repro.routing.registry import make_algorithm  # noqa: E402
from repro.simulation.array_engine import (  # noqa: E402
    ArrayWormholeSimulator,
    BatchSimulator,
    demotion_reasons,
)
from repro.simulation.config import SimulationConfig  # noqa: E402
from repro.simulation.engine import WormholeSimulator  # noqa: E402


@st.composite
def operating_point(draw):
    m = draw(st.integers(3, 6))
    algorithm = draw(
        st.sampled_from(["xy", "west-first", "north-last", "negative-first"])
    )
    pattern = draw(st.sampled_from(["uniform", "transpose"]))
    # matrix transpose requires a square mesh
    n = m if pattern == "transpose" else draw(st.integers(3, 6))
    config = SimulationConfig(
        offered_load=draw(st.sampled_from([0.4, 0.8, 1.5])),
        warmup_cycles=50,
        measure_cycles=200,
        seed=draw(st.integers(0, 10_000)),
        buffer_depth=draw(st.sampled_from([1, 2, 4])),
        message_lengths=draw(
            st.sampled_from([(4, 16, 64), (5, 20, 60), (8,)])
        ),
        backend="array",
    )
    return f"mesh:{m}x{n}", algorithm, pattern, config


def build(topo_spec, algorithm, pattern, config):
    topology = parse_topology_spec(topo_spec)
    return (
        make_algorithm(algorithm, topology),
        make_pattern(pattern, topology),
        config,
    )


class TestBatchOfOne:
    @settings(max_examples=15)
    @given(operating_point())
    def test_batch_of_one_equals_solo_array_run(self, point):
        solo = ArrayWormholeSimulator(*build(*point)).run()
        (batched,) = BatchSimulator([build(*point)]).run()
        assert batched.to_dict() == solo.to_dict()


class TestBatchedSweep:
    @settings(max_examples=8)
    @given(operating_point(), st.sampled_from([(0.3, 0.7, 1.1, 1.6)]))
    def test_batched_sweep_matches_per_point_event_runs(
        self, point, loads
    ):
        # One operating point swept over loads, as a figure sweep would
        # submit it: the batch must reproduce every per-point event run
        # (hence any aggregate computed from them) exactly.
        topo_spec, algorithm, pattern, config = point
        import dataclasses

        sweep = [
            build(
                topo_spec, algorithm, pattern,
                dataclasses.replace(config, offered_load=load),
            )
            for load in loads
        ]
        batched = BatchSimulator(sweep).run()
        solo = [
            WormholeSimulator(
                *build(
                    topo_spec, algorithm, pattern,
                    dataclasses.replace(
                        config, offered_load=load, backend="event"
                    ),
                )
            ).run()
            for load in loads
        ]
        assert [r.to_dict() for r in batched] == [
            r.to_dict() for r in solo
        ]
        batch_delivered = sum(r.delivered_packets for r in batched)
        solo_delivered = sum(r.delivered_packets for r in solo)
        assert batch_delivered == solo_delivered
        assert [r.avg_latency_us for r in batched] == [
            r.avg_latency_us for r in solo
        ]


@st.composite
def fault_plan(draw, m):
    topology = parse_topology_spec(f"mesh:{m}x{m}")
    start = draw(st.sampled_from([60, 120]))
    end = start + 150 if draw(st.booleans()) else None
    kwargs = {} if end is None else {"end": end}
    plan = FaultPlan.random_links(
        topology, draw(st.integers(1, 3)),
        seed=draw(st.integers(0, 500)), start=start, **kwargs,
    )
    if draw(st.booleans()):
        plan = FaultPlan(events=plan.events + (
            FaultEvent.router(
                draw(st.integers(0, m * m - 1)), start=start + 30
            ),
        ))
    return plan


@st.composite
def faulted_point(draw):
    m = draw(st.integers(4, 6))
    algorithm = draw(
        st.sampled_from(["west-first", "north-last", "negative-first"])
    )
    policy = draw(
        st.sampled_from(["xy", "round-robin", "max-credits", "threshold"])
    )
    config = SimulationConfig(
        offered_load=draw(st.sampled_from([0.8, 1.3])),
        warmup_cycles=50,
        measure_cycles=220,
        drain_cycles=100,
        seed=draw(st.integers(0, 10_000)),
        fault_plan=draw(fault_plan(m)),
        packet_timeout=draw(st.sampled_from([120, 250])),
        max_retries=draw(st.integers(0, 2)),
        output_selection=policy,
        selection_threshold=draw(st.integers(1, 3)),
        backend="array",
    )
    if draw(st.booleans()):
        config = config.with_observability(channel_series_period=64)
    return f"mesh:{m}x{m}", algorithm, "uniform", config


@st.composite
def vc_point(draw):
    """Arbitrary topology family x VC count x algorithm, as the
    torus/hypercube figure harnesses submit them."""
    family = draw(st.sampled_from(["mesh", "torus", "hypercube"]))
    num_vc = draw(st.integers(1, 4))
    if family == "mesh":
        m = draw(st.integers(3, 5))
        n = draw(st.integers(3, 5))
        topo_spec = f"mesh:{m}x{n}"
        algorithm = draw(
            st.sampled_from(
                ["west-first", "negative-first", "escape-vc-adaptive"]
            )
        )
        if algorithm == "escape-vc-adaptive" and num_vc < 2:
            num_vc = 2  # the escape class needs at least one adaptive VC
    elif family == "torus":
        radix = draw(st.sampled_from([4, 6]))
        topo_spec = f"torus:{radix}x2"
        algorithm = draw(
            st.sampled_from(
                ["negative-first-torus", "dateline-dimension-order"]
            )
        )
    else:
        topo_spec = f"cube:{draw(st.integers(3, 4))}"
        algorithm = draw(st.sampled_from(["e-cube", "p-cube"]))
    config = SimulationConfig(
        offered_load=draw(st.sampled_from([0.5, 0.9, 1.4])),
        warmup_cycles=50,
        measure_cycles=180,
        seed=draw(st.integers(0, 10_000)),
        virtual_channels=num_vc,
        buffer_depth=draw(st.sampled_from([1, 2])),
        backend="array",
    )
    return topo_spec, algorithm, "uniform", config


class TestVirtualChannelBatches:
    """The multi-VC tentpole property: arbitrary (topology family x
    virtual_channels in 1..4 x algorithm) batch compositions equal
    per-point event-engine runs bit-for-bit, and every in-envelope
    point runs on the vectorized kernels."""

    @settings(max_examples=8, deadline=None)
    @given(st.lists(vc_point(), min_size=1, max_size=3))
    def test_vc_batch_matches_per_point_event_runs(self, points):
        specs = [build(*p) for p in points]
        batch = BatchSimulator(specs)
        for _, _, _, config in points:
            assert demotion_reasons(config) == ()
        # These shapes stay under the LUT cap, so in-envelope means
        # vectorized — a silent scalar fallback fails here.
        assert batch.vectorized_count == len(points)
        batched = batch.run()
        solo = [
            WormholeSimulator(
                *build(
                    topo_spec, algorithm, pattern,
                    dataclasses.replace(config, backend="event"),
                )
            ).run()
            for topo_spec, algorithm, pattern, config in points
        ]
        assert [r.to_dict() for r in batched] == [
            r.to_dict() for r in solo
        ]


class TestFaultedSelectionBatches:
    """The tentpole property: arbitrary fault plan x selection policy x
    watchdog/retry/collector settings, batched in arbitrary
    compositions, equals per-point event-engine runs bit-for-bit —
    and every such point runs on the vectorized kernels."""

    @settings(max_examples=6, deadline=None)
    @given(st.lists(faulted_point(), min_size=2, max_size=3))
    def test_faulted_batch_matches_per_point_event_runs(self, points):
        for _, _, _, config in points:
            assert demotion_reasons(config) == ()
        batched = BatchSimulator([build(*p) for p in points]).run()
        solo = [
            WormholeSimulator(
                *build(
                    topo_spec, algorithm, pattern,
                    dataclasses.replace(config, backend="event"),
                )
            ).run()
            for topo_spec, algorithm, pattern, config in points
        ]
        assert [r.to_dict() for r in batched] == [
            r.to_dict() for r in solo
        ]
