"""Property-based cross-backend guarantees for the array engine.

Random operating points (shape, algorithm, pattern, load, buffer
depth, message lengths, seed) must satisfy:

* a :class:`BatchSimulator` batch of size 1 returns exactly the same
  ``SimulationResult.to_dict()`` as a solo array-backend run;
* a batched sweep returns per-point results — and therefore sweep
  aggregates — identical to running each point alone on the event
  engine.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

pytest.importorskip("numpy")

from repro.analysis.runner import make_pattern, parse_topology_spec  # noqa: E402
from repro.routing.registry import make_algorithm  # noqa: E402
from repro.simulation.array_engine import (  # noqa: E402
    ArrayWormholeSimulator,
    BatchSimulator,
)
from repro.simulation.config import SimulationConfig  # noqa: E402
from repro.simulation.engine import WormholeSimulator  # noqa: E402


@st.composite
def operating_point(draw):
    m = draw(st.integers(3, 6))
    algorithm = draw(
        st.sampled_from(["xy", "west-first", "north-last", "negative-first"])
    )
    pattern = draw(st.sampled_from(["uniform", "transpose"]))
    # matrix transpose requires a square mesh
    n = m if pattern == "transpose" else draw(st.integers(3, 6))
    config = SimulationConfig(
        offered_load=draw(st.sampled_from([0.4, 0.8, 1.5])),
        warmup_cycles=50,
        measure_cycles=200,
        seed=draw(st.integers(0, 10_000)),
        buffer_depth=draw(st.sampled_from([1, 2, 4])),
        message_lengths=draw(
            st.sampled_from([(4, 16, 64), (5, 20, 60), (8,)])
        ),
        backend="array",
    )
    return f"mesh:{m}x{n}", algorithm, pattern, config


def build(topo_spec, algorithm, pattern, config):
    topology = parse_topology_spec(topo_spec)
    return (
        make_algorithm(algorithm, topology),
        make_pattern(pattern, topology),
        config,
    )


class TestBatchOfOne:
    @settings(max_examples=15)
    @given(operating_point())
    def test_batch_of_one_equals_solo_array_run(self, point):
        solo = ArrayWormholeSimulator(*build(*point)).run()
        (batched,) = BatchSimulator([build(*point)]).run()
        assert batched.to_dict() == solo.to_dict()


class TestBatchedSweep:
    @settings(max_examples=8)
    @given(operating_point(), st.sampled_from([(0.3, 0.7, 1.1, 1.6)]))
    def test_batched_sweep_matches_per_point_event_runs(
        self, point, loads
    ):
        # One operating point swept over loads, as a figure sweep would
        # submit it: the batch must reproduce every per-point event run
        # (hence any aggregate computed from them) exactly.
        topo_spec, algorithm, pattern, config = point
        import dataclasses

        sweep = [
            build(
                topo_spec, algorithm, pattern,
                dataclasses.replace(config, offered_load=load),
            )
            for load in loads
        ]
        batched = BatchSimulator(sweep).run()
        solo = [
            WormholeSimulator(
                *build(
                    topo_spec, algorithm, pattern,
                    dataclasses.replace(
                        config, offered_load=load, backend="event"
                    ),
                )
            ).run()
            for load in loads
        ]
        assert [r.to_dict() for r in batched] == [
            r.to_dict() for r in solo
        ]
        batch_delivered = sum(r.delivered_packets for r in batched)
        solo_delivered = sum(r.delivered_packets for r in solo)
        assert batch_delivered == solo_delivered
        assert [r.avg_latency_us for r in batched] == [
            r.avg_latency_us for r in solo
        ]
