"""Property-based tests for the supervised pool's batch guarantees.

Over arbitrary per-point misbehaviour scripts and retry budgets, a
``keep_going`` batch must account for every spec exactly once — either a
spec-ordered result or a manifest entry with the cause the script
predicts — and journal-resume over any completed prefix must re-execute
exactly the complement.
"""

import os
import tempfile
import time
from dataclasses import dataclass

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import (
    CampaignJournal,
    ParallelSweepRunner,
    ResultCache,
    SupervisedPool,
)


@dataclass(frozen=True)
class ScriptSpec:
    """Attempt ``a`` follows ``script[a - 1]``; later attempts succeed."""

    value: int
    script: tuple = ()

    def behavior(self, attempt: int) -> str:
        if 1 <= attempt <= len(self.script):
            return self.script[attempt - 1]
        return "ok"

    def execute_attempt(self, attempt: int):
        behavior = self.behavior(attempt)
        if behavior == "crash":
            os._exit(9)
        if behavior == "hang":
            time.sleep(300)
        if behavior == "raise":
            raise ValueError(f"scripted #{self.value}")
        return ("result", self.value)

    def execute(self):
        return self.execute_attempt(1)

    def to_dict(self):
        return {"value": self.value, "script": list(self.script)}

    def cache_key(self) -> str:
        return f"prop-{self.value}-{'.'.join(self.script) or 'ok'}"


CAUSE_OF = {"crash": "crash", "raise": "exception", "hang": "timeout"}

# "hang" is deliberately rare (and the scripts short): each hang costs a
# point_timeout kill, so a pathological draw stays inside the example
# budget.
scripts = st.lists(
    st.sampled_from(["crash", "raise", "ok", "ok", "hang"]),
    min_size=0,
    max_size=2,
).map(tuple)


def predict(spec: ScriptSpec, max_retries: int):
    """(outcome, detail): what the supervisor must conclude."""
    for attempt in range(1, max_retries + 2):
        if spec.behavior(attempt) == "ok":
            return "ok", attempt
    return "failed", CAUSE_OF[spec.behavior(max_retries + 1)]


class TestBatchAccounting:
    @settings(max_examples=10, deadline=None)
    @given(
        scripts_list=st.lists(scripts, min_size=1, max_size=5),
        max_retries=st.integers(0, 2),
        workers=st.integers(1, 3),
    )
    def test_every_spec_is_accounted_exactly_once(
        self, scripts_list, max_retries, workers
    ):
        specs = [
            ScriptSpec(i, script) for i, script in enumerate(scripts_list)
        ]
        pool = SupervisedPool(
            workers=workers,
            point_timeout=1.0,
            max_retries=max_retries,
            retry_backoff_base=0.01,
        )
        results = {}
        failures = pool.run(
            list(enumerate(specs)),
            keep_going=True,
            on_point=lambda i, r, attempts, d: results.__setitem__(
                i, (r, attempts)
            ),
        )

        # Results ∪ failures partition the batch: every index exactly
        # once, never both, never neither.
        failed_indices = [f.index for f in failures]
        assert set(results) | set(failed_indices) == set(range(len(specs)))
        assert not (set(results) & set(failed_indices))
        assert failed_indices == sorted(failed_indices)

        for i, spec in enumerate(specs):
            outcome, detail = predict(spec, max_retries)
            if outcome == "ok":
                result, attempts = results[i]
                assert result == ("result", i)
                assert attempts == detail
            else:
                (failure,) = [f for f in failures if f.index == i]
                assert failure.cause == detail
                assert failure.attempts == max_retries + 1


class TestJournalResume:
    @settings(max_examples=10, deadline=None)
    @given(
        n=st.integers(1, 6),
        data=st.data(),
    )
    def test_resume_executes_exactly_the_complement(self, n, data):
        prefix = data.draw(st.integers(0, n))
        specs = [ScriptSpec(i) for i in range(n)]
        with tempfile.TemporaryDirectory() as tmp:
            cache_dir = os.path.join(tmp, "cache")
            journal_path = os.path.join(tmp, "journal.jsonl")

            first = ParallelSweepRunner(
                jobs=2,
                cache=ResultCache(cache_dir),
                journal=journal_path,
            )
            first.run_points(specs[:prefix])
            first.close()
            journaled = {
                r["key"] for r in CampaignJournal.read(journal_path)
                if r["kind"] == "point"
            }
            assert journaled == {s.cache_key() for s in specs[:prefix]}

            second = ParallelSweepRunner(
                jobs=2,
                cache=ResultCache(cache_dir),
                journal=journal_path,
                resume=True,
            )
            results = second.run_points(specs)
            second.close()

            assert second.stats.executed == n - prefix
            assert second.stats.cached == prefix
            assert results == [("result", i) for i in range(n)]
            final = {
                r["key"] for r in CampaignJournal.read(journal_path)
                if r["kind"] == "point"
            }
            assert final == {s.cache_key() for s in specs}
