"""Property-based tests for the verification layer: certificates and
fault analysis on randomly drawn scenarios."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import TurnModel, two_turn_prohibitions_2d
from repro.routing import (
    TurnRestrictedMinimal,
    WestFirst,
    XY,
    path_channels,
    walk,
)
from repro.topology import Mesh2D
from repro.verification import (
    fault_tolerance,
    generate_certificate,
    pair_survives,
    turn_set_is_deadlock_free,
)


SAFE_PAIRS = None


def safe_pairs():
    global SAFE_PAIRS
    if SAFE_PAIRS is None:
        mesh = Mesh2D(3, 3)
        SAFE_PAIRS = [
            pair
            for pair in two_turn_prohibitions_2d()
            if turn_set_is_deadlock_free(
                mesh, TurnModel.from_prohibited("pair", 2, pair)
            )
        ]
    return SAFE_PAIRS


class TestCertificateProperties:
    @given(
        pair_index=st.integers(0, 11),
        m=st.integers(3, 5),
        n=st.integers(3, 5),
        seed=st.integers(0, 2 ** 16),
    )
    @settings(max_examples=20)
    def test_every_safe_model_gets_a_valid_certificate(
        self, pair_index, m, n, seed
    ):
        mesh = Mesh2D(m, n)
        model = TurnModel.from_prohibited(
            "pair", 2, safe_pairs()[pair_index]
        )
        algorithm = TurnRestrictedMinimal(mesh, model)
        certificate = generate_certificate(algorithm)
        assert certificate is not None
        # Walk random routable pairs: ranks strictly increase.
        rng = random.Random(seed)
        for _ in range(10):
            src, dst = rng.randrange(m * n), rng.randrange(m * n)
            if src == dst or not algorithm.candidates(src, dst):
                continue
            path = walk(algorithm, src, dst, rng=rng)
            assert certificate.check_path(path_channels(mesh, path))


class TestFaultProperties:
    @given(
        m=st.integers(3, 6),
        n=st.integers(3, 6),
        seed=st.integers(0, 2 ** 16),
        num_faults=st.integers(0, 4),
    )
    @settings(max_examples=25)
    def test_survival_is_monotone_in_the_fault_set(
        self, m, n, seed, num_faults
    ):
        """Adding faults can only kill pairs, never revive them."""
        mesh = Mesh2D(m, n)
        algorithm = WestFirst(mesh)
        rng = random.Random(seed)
        channels = list(mesh.channels())
        faults = rng.sample(channels, num_faults)
        smaller = set(faults[: max(0, num_faults - 1)])
        larger = set(faults)
        pairs = [
            (rng.randrange(m * n), rng.randrange(m * n)) for _ in range(20)
        ]
        pairs = [(s, d) for s, d in pairs if s != d]
        small_report = fault_tolerance(algorithm, smaller, pairs)
        large_report = fault_tolerance(algorithm, larger, pairs)
        assert large_report.surviving_pairs <= small_report.surviving_pairs

    @given(
        m=st.integers(3, 6),
        seed=st.integers(0, 2 ** 16),
    )
    @settings(max_examples=25)
    def test_faults_off_the_route_never_matter_for_xy(self, m, seed):
        """xy's unique path either contains a faulty channel or the pair
        survives — exact characterisation."""
        mesh = Mesh2D(m, m)
        algorithm = XY(mesh)
        rng = random.Random(seed)
        channels = list(mesh.channels())
        faulty = set(rng.sample(channels, 2))
        src, dst = rng.randrange(m * m), rng.randrange(m * m)
        if src == dst:
            return
        route = set(path_channels(mesh, walk(algorithm, src, dst)))
        expected = not (route & faulty)
        assert pair_survives(algorithm, src, dst, faulty) == expected
