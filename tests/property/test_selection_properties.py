"""Property-based tests for the output-selection policies: on arbitrary
candidate sets and arbitrary (including absent or partial) congestion
signals, every policy returns a member of the offered set — selection
may permute preference, never invent a channel."""

import random

from hypothesis import given
from hypothesis import strategies as st

from repro.routing.selection import (
    SELECTION_POLICIES,
    make_selection_policy,
)
from repro.topology import Direction

DIRECTIONS = [Direction(dim, sign) for dim in range(3) for sign in (-1, 1)]


class ArbitraryView:
    """A congestion view with arbitrary (possibly missing) signals."""

    def __init__(self, dst, credits, occupancy):
        self._dst = dst
        self._credits = credits
        self._occupancy = occupancy

    def downstream(self, node, direction):
        return self._dst.get(direction)

    def free_credits(self, node):
        return self._credits.get(node)

    def occupancy(self, node):
        return self._occupancy.get(node)


class FakePacket:
    head_node = 0


@st.composite
def selection_case(draw):
    options = draw(
        st.lists(
            st.sampled_from(DIRECTIONS), min_size=1, max_size=6, unique=True
        )
    )
    # Each candidate direction independently has a downstream node or
    # not; each known node independently has credit/occupancy data or
    # not — covering full, partial, and absent congestion signals.
    dst = {}
    credits = {}
    occupancy = {}
    for i, d in enumerate(options):
        if draw(st.booleans()):
            dst[d] = 100 + i
            if draw(st.booleans()):
                credits[100 + i] = draw(st.integers(0, 8))
            if draw(st.booleans()):
                occupancy[100 + i] = draw(st.integers(0, 8))
    bound = draw(st.booleans())
    threshold = draw(st.integers(0, 4))
    calls = draw(st.integers(1, 5))
    seed = draw(st.integers(0, 2**16))
    return options, ArbitraryView(dst, credits, occupancy), bound, threshold, calls, seed


@given(name=st.sampled_from(sorted(SELECTION_POLICIES)), case=selection_case())
def test_policies_return_only_offered_candidates(name, case):
    options, view, bound, threshold, calls, seed = case
    policy = make_selection_policy(name, threshold=threshold)
    if bound:
        policy.bind(view)
    rng = random.Random(seed)
    packet = FakePacket()
    # Repeated calls also exercise the stateful rotation pointers.
    for _ in range(calls):
        choice = policy(list(options), packet, rng)
        assert choice in options, (
            f"{policy!r} returned {choice} outside {options}"
        )


@given(case=selection_case())
def test_singleton_candidate_is_always_chosen(case):
    options, view, bound, threshold, _, seed = case
    only = options[0]
    rng = random.Random(seed)
    for name in SELECTION_POLICIES:
        policy = make_selection_policy(name, threshold=threshold)
        if bound:
            policy.bind(view)
        assert policy([only], FakePacket(), rng) == only
