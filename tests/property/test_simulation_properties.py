"""Property-based tests for simulator invariants on randomised runs."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.routing import mesh_algorithms
from repro.simulation import (
    PacketState,
    SimulationConfig,
    WormholeSimulator,
)
from repro.topology import Mesh2D
from repro.traffic import UniformPattern


@st.composite
def sim_case(draw):
    m = draw(st.integers(3, 6))
    n = draw(st.integers(3, 6))
    load = draw(st.floats(0.2, 3.0))
    seed = draw(st.integers(0, 2 ** 16))
    alg_index = draw(st.integers(0, 3))
    depth = draw(st.integers(1, 3))
    return m, n, load, seed, alg_index, depth


def build(m, n, load, seed, alg_index, depth, cycles=800):
    mesh = Mesh2D(m, n)
    algorithm = mesh_algorithms(mesh)[alg_index]
    config = SimulationConfig(
        offered_load=load,
        warmup_cycles=0,
        measure_cycles=cycles,
        seed=seed,
        buffer_depth=depth,
    )
    return WormholeSimulator(algorithm, UniformPattern(mesh), config)


class TestInvariantsDuringExecution:
    @given(sim_case())
    @settings(max_examples=25)
    def test_structural_invariants_hold_every_50_cycles(self, case):
        sim = build(*case)
        for _ in range(12):
            for _ in range(50):
                sim.step()
            self.check_invariants(sim)

    @staticmethod
    def check_invariants(sim):
        depth = sim.config.buffer_depth
        # Channel allocation is consistent with the packets' hold lists.
        held = {}
        for packet in sim.active:
            assert packet.in_network
            assert 0 <= packet.ejected <= packet.launched <= packet.length
            for hold in packet.holds:
                assert 0 <= hold.buffered <= depth
                assert hold.buffered <= hold.moved <= packet.length
                assert hold.channel_id not in held
                held[hold.channel_id] = packet
            # The worm's holds form a contiguous channel chain.
            chain = [sim.channels[h.channel_id] for h in packet.holds]
            for a, b in zip(chain, chain[1:]):
                assert a.dst == b.src
        for cid, owner in enumerate(sim.channel_alloc):
            if owner is not None:
                assert held.get(cid) is owner
        for node, owner in enumerate(sim.ejection_alloc):
            if owner is not None:
                assert owner.state is PacketState.EJECTING
                assert owner.dst == node

    @given(sim_case())
    @settings(max_examples=15)
    def test_flit_conservation_at_end(self, case):
        sim = build(*case, cycles=1500)
        result = sim.run()
        assert not result.deadlock  # turn-model algorithms cannot deadlock
        # Every delivered packet's flits fully drained.
        in_flight = sum(p.flits_in_network for p in sim.active)
        buffered = sum(
            h.buffered for p in sim.active for h in p.holds
        )
        assert buffered <= in_flight

    @given(sim_case())
    @settings(max_examples=10)
    def test_delivered_packets_have_complete_records(self, case):
        sim = build(*case, cycles=1500)
        sim.run()
        result = sim.result
        if result.delivered_packets:
            assert result.delivered_flits > 0
            assert result.avg_latency_us is not None
            assert result.avg_latency_us > 0
            assert result.avg_network_latency_us <= result.avg_latency_us
            assert result.avg_hops >= 1
