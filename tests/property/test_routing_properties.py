"""Property-based tests for routing-algorithm invariants.

The heart of the suite: every paper algorithm, on randomly drawn
topologies and node pairs, must deliver, stay minimal, respect its turn
model, and — for the three two-phase algorithms — be *maximally adaptive*
(identical to the exhaustive turn-restricted routing relation)."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import TurnModel
from repro.routing import (
    AllButOneNegativeFirst,
    AllButOnePositiveLast,
    DimensionOrder,
    NegativeFirst,
    PCube,
    TurnRestrictedMinimal,
    WestFirst,
    NorthLast,
    XY,
    directions_of_path,
    path_respects_turn_model,
    walk,
)
from repro.topology import Hypercube, Mesh, Mesh2D


MESH_ALGOS = [XY, WestFirst, NorthLast, NegativeFirst]


@st.composite
def mesh_case(draw):
    m = draw(st.integers(2, 8))
    n = draw(st.integers(2, 8))
    topo = Mesh2D(m, n)
    src = draw(st.integers(0, topo.num_nodes - 1))
    dst = draw(st.integers(0, topo.num_nodes - 1))
    seed = draw(st.integers(0, 2 ** 16))
    return topo, src, dst, seed


@st.composite
def mesh3d_case(draw):
    dims = tuple(draw(st.integers(2, 4)) for _ in range(3))
    topo = Mesh(dims)
    src = draw(st.integers(0, topo.num_nodes - 1))
    dst = draw(st.integers(0, topo.num_nodes - 1))
    seed = draw(st.integers(0, 2 ** 16))
    return topo, src, dst, seed


@st.composite
def cube_case(draw):
    n = draw(st.integers(2, 8))
    topo = Hypercube(n)
    src = draw(st.integers(0, topo.num_nodes - 1))
    dst = draw(st.integers(0, topo.num_nodes - 1))
    seed = draw(st.integers(0, 2 ** 16))
    return topo, src, dst, seed


class TestDeliveryAndMinimality:
    @given(mesh_case())
    def test_2d_algorithms_deliver_minimally(self, case):
        topo, src, dst, seed = case
        if src == dst:
            return
        rng = random.Random(seed)
        for alg_cls in MESH_ALGOS:
            path = walk(alg_cls(topo), src, dst, rng=rng)
            assert path[-1] == dst
            assert len(path) - 1 == topo.distance(src, dst)

    @given(mesh3d_case())
    def test_3d_algorithms_deliver_minimally(self, case):
        topo, src, dst, seed = case
        if src == dst:
            return
        rng = random.Random(seed)
        for alg_cls in (
            DimensionOrder,
            AllButOneNegativeFirst,
            AllButOnePositiveLast,
            NegativeFirst,
        ):
            path = walk(alg_cls(topo), src, dst, rng=rng)
            assert len(path) - 1 == topo.distance(src, dst)

    @given(cube_case())
    def test_pcube_delivers_minimally(self, case):
        topo, src, dst, seed = case
        if src == dst:
            return
        path = walk(PCube(topo), src, dst, rng=random.Random(seed))
        assert len(path) - 1 == topo.hamming(src, dst)


class TestTurnDiscipline:
    @given(mesh_case())
    def test_paths_respect_turn_models(self, case):
        topo, src, dst, seed = case
        if src == dst:
            return
        rng = random.Random(seed)
        for alg_cls in (WestFirst, NorthLast, NegativeFirst):
            alg = alg_cls(topo)
            path = walk(alg, src, dst, rng=rng)
            assert path_respects_turn_model(topo, path, alg.turn_model())

    @given(mesh_case())
    def test_candidates_always_productive_for_minimal_algorithms(self, case):
        topo, src, dst, seed = case
        if src == dst:
            return
        for alg_cls in MESH_ALGOS:
            alg = alg_cls(topo)
            productive = set(topo.productive_directions(src, dst))
            assert set(alg.candidates(src, dst)) <= productive

    @given(cube_case())
    def test_pcube_never_reverses(self, case):
        topo, src, dst, seed = case
        if src == dst:
            return
        path = walk(PCube(topo), src, dst, rng=random.Random(seed))
        dims_taken = [d.dim for d in directions_of_path(topo, path)]
        assert len(set(dims_taken)) == len(dims_taken)


class TestMaximalAdaptiveness:
    """The paper's central claim: the phase-structured algorithms are
    *maximally adaptive* — they permit every minimal path the prohibition
    set allows.  Equivalently, their candidate sets equal the exhaustive
    turn-restricted relation at every reachable state."""

    @given(mesh_case())
    @settings(max_examples=40)
    def test_west_first_equals_turn_restricted(self, case):
        topo, src, dst, seed = case
        self._check(topo, WestFirst(topo), TurnModel.west_first(), src, dst, seed)

    @given(mesh_case())
    @settings(max_examples=40)
    def test_north_last_equals_turn_restricted(self, case):
        topo, src, dst, seed = case
        self._check(topo, NorthLast(topo), TurnModel.north_last(), src, dst, seed)

    @given(mesh_case())
    @settings(max_examples=40)
    def test_negative_first_equals_turn_restricted(self, case):
        topo, src, dst, seed = case
        self._check(
            topo, NegativeFirst(topo), TurnModel.negative_first(), src, dst, seed
        )

    def _check(self, topo, algorithm, model, src, dst, seed):
        if src == dst:
            return
        maximal = TurnRestrictedMinimal(topo, model)
        rng = random.Random(seed)
        # Compare candidate sets along a random legal walk.
        current, heading = src, None
        while current != dst:
            ours = algorithm.candidates(current, dst, heading)
            theirs = maximal.candidates(current, dst, heading)
            assert ours == theirs, (
                f"at {topo.coords(current)} heading {heading}: "
                f"{ours} != {theirs}"
            )
            direction = rng.choice(ours)
            current = topo.neighbor(current, direction)
            heading = direction
