"""Tests for the connectivity checker."""

from repro.routing import NegativeFirst, WestFirst, XY
from repro.topology import Mesh2D
from repro.verification import check_connectivity


class TestConnectivity:
    def test_full_connectivity_for_paper_algorithms(self):
        mesh = Mesh2D(5, 5)
        for alg_cls in (XY, WestFirst, NegativeFirst):
            report = check_connectivity(alg_cls(mesh))
            assert report.fully_connected
            assert report.delivered_pairs == report.total_pairs
            assert report.total_pairs == 25 * 24

    def test_minimality_reported(self):
        mesh = Mesh2D(4, 4)
        report = check_connectivity(XY(mesh))
        assert report.minimal_everywhere
        assert report.max_hops_seen == 6

    def test_subset_of_pairs(self):
        mesh = Mesh2D(4, 4)
        report = check_connectivity(XY(mesh), pairs=[(0, 15), (15, 0)])
        assert report.total_pairs == 2
        assert report.fully_connected

    def test_stranding_algorithm_is_reported(self):
        """An algorithm with a hole in its routing relation is caught."""

        class Broken(XY):
            def candidates(self, current, dest, in_direction=None):
                if current == 5:
                    return []
                return super().candidates(current, dest, in_direction)

        mesh = Mesh2D(4, 4)
        report = check_connectivity(Broken(mesh))
        assert not report.fully_connected
        assert all(pair[0] == 5 or True for pair in report.stranded)
        assert any(src == 5 for src, _ in report.stranded)
