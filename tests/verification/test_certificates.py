"""Tests for automatic Dally-Seitz numbering certificates."""

import random

from repro.core import Turn, TurnModel
from repro.routing import (
    NegativeFirst,
    TurnRestrictedMinimal,
    WestFirst,
    XY,
    path_channels,
    walk,
)
from repro.topology import EAST, Mesh2D
from repro.verification import (
    DiGraph,
    generate_certificate,
    topological_numbering,
    validate_certificate,
)


class TestTopologicalNumbering:
    def test_chain(self):
        g = DiGraph()
        for i in range(5):
            g.add_edge(i, i + 1)
        numbers = topological_numbering(g)
        assert all(numbers[i] < numbers[i + 1] for i in range(5))

    def test_cycle_returns_none(self):
        g = DiGraph()
        g.add_edge("a", "b")
        g.add_edge("b", "a")
        assert topological_numbering(g) is None

    def test_diamond(self):
        g = DiGraph()
        for a, b in [(0, 1), (0, 2), (1, 3), (2, 3)]:
            g.add_edge(a, b)
        numbers = topological_numbering(g)
        assert numbers[0] < numbers[1] < numbers[3]
        assert numbers[0] < numbers[2] < numbers[3]


class TestGeneratedCertificates:
    def test_certificates_exist_for_paper_algorithms(self):
        mesh = Mesh2D(5, 5)
        for alg in (XY(mesh), WestFirst(mesh), NegativeFirst(mesh)):
            certificate = generate_certificate(alg)
            assert certificate is not None, alg.name
            assert validate_certificate(certificate, alg) == []

    def test_certificate_covers_every_channel(self):
        mesh = Mesh2D(4, 4)
        certificate = generate_certificate(WestFirst(mesh))
        assert set(certificate.numbers) >= set(mesh.channels())

    def test_no_certificate_for_deadlocking_relation(self):
        mesh = Mesh2D(4, 4)
        bad = TurnRestrictedMinimal(
            mesh, TurnModel.from_prohibited("none", 2, set())
        )
        assert generate_certificate(bad) is None

    def test_random_walks_strictly_increase(self):
        """The generated numbering plays the exact role of the paper's
        hand-built ones: strictly monotone along every legal path."""
        mesh = Mesh2D(6, 6)
        rng = random.Random(5)
        for alg in (WestFirst(mesh), NegativeFirst(mesh)):
            certificate = generate_certificate(alg)
            for _ in range(150):
                src = rng.randrange(36)
                dst = rng.randrange(36)
                if src == dst:
                    continue
                path = walk(alg, src, dst, rng=rng)
                channels = path_channels(mesh, path)
                assert certificate.check_path(channels), (alg.name, path)

    def test_custom_turn_model_gets_a_certificate(self):
        from repro.topology import SOUTH, WEST

        mesh = Mesh2D(4, 4)
        model = TurnModel.from_prohibited(
            "south-last", 2, {Turn(SOUTH, WEST), Turn(SOUTH, EAST)}
        )
        alg = TurnRestrictedMinimal(mesh, model)
        certificate = generate_certificate(alg)
        assert certificate is not None
        assert validate_certificate(certificate, alg) == []

    def test_tampered_certificate_fails_validation(self):
        mesh = Mesh2D(4, 4)
        alg = XY(mesh)
        certificate = generate_certificate(alg)
        # Swap the two extreme ranks: some dependency must now violate.
        items = sorted(certificate.numbers.items(), key=lambda kv: kv[1])
        lo_ch, lo = items[0]
        hi_ch, hi = items[-1]
        certificate.numbers[lo_ch], certificate.numbers[hi_ch] = hi, lo
        assert validate_certificate(certificate, alg) != []
