"""Tests for the channel-dependency-graph deadlock verifier.

These encode the paper's central structural results: the paper's
algorithms are deadlock free on their topologies; exactly 12 of the 16
two-turn prohibitions prevent deadlock (Section 3); and the Figure 4
six-turn configuration allows deadlock even though each abstract cycle is
broken.
"""

import pytest

from repro.core import Turn, TurnModel, two_turn_prohibitions_2d
from repro.routing import (
    hypercube_algorithms,
    mesh_algorithms,
    torus_algorithms,
)
from repro.topology import (
    EAST,
    Hypercube,
    KAryNCube,
    Mesh,
    Mesh2D,
    NORTH,
    SOUTH,
    WEST,
)
from repro.verification import (
    turn_set_is_deadlock_free,
    verify_algorithm,
    verify_turn_set,
)


class TestPaperAlgorithmsAreDeadlockFree:
    @pytest.mark.parametrize("shape", [(4, 4), (5, 3)])
    def test_mesh_suite(self, shape):
        mesh = Mesh2D(*shape)
        for alg in mesh_algorithms(mesh):
            verdict = verify_algorithm(alg)
            assert verdict.deadlock_free, f"{alg.name}: {verdict.cycle}"

    def test_cube_suite(self):
        cube = Hypercube(4)
        for alg in hypercube_algorithms(cube):
            assert verify_algorithm(alg).deadlock_free, alg.name

    def test_torus_suite(self):
        torus = KAryNCube(5, 2)
        for alg in torus_algorithms(torus):
            assert verify_algorithm(alg).deadlock_free, alg.name

    def test_3d_mesh_suite(self):
        from repro.routing import (
            AllButOneNegativeFirst,
            AllButOnePositiveLast,
            DimensionOrder,
            NegativeFirst,
        )

        mesh = Mesh((3, 3, 3))
        for alg in (
            DimensionOrder(mesh),
            AllButOneNegativeFirst(mesh),
            AllButOnePositiveLast(mesh),
            NegativeFirst(mesh),
        ):
            assert verify_algorithm(alg).deadlock_free, alg.name

    def test_verdict_reports_sizes(self):
        mesh = Mesh2D(3, 3)
        verdict = verify_algorithm(mesh_algorithms(mesh)[0])
        assert verdict.num_channels == mesh.num_channels()
        assert verdict.num_dependencies > 0
        assert bool(verdict) is True


class TestTurnSetVerification:
    def test_exactly_12_of_16_two_turn_prohibitions_are_deadlock_free(self):
        """Section 3: 'Of the 16 different ways to prohibit these two
        turns, 12 prevent deadlock.'"""
        mesh = Mesh2D(4, 4)
        free = [
            pair
            for pair in two_turn_prohibitions_2d()
            if turn_set_is_deadlock_free(
                mesh, TurnModel.from_prohibited("pair", 2, pair)
            )
        ]
        assert len(free) == 12

    def test_the_paper_prohibitions_are_among_the_safe_ones(self):
        mesh = Mesh2D(4, 4)
        for model in (
            TurnModel.west_first(),
            TurnModel.north_last(),
            TurnModel.negative_first(),
        ):
            assert turn_set_is_deadlock_free(mesh, model), model.name

    def test_figure_4_configuration_allows_deadlock(self):
        """Figure 4: prohibiting a turn and its inverse (one from each
        abstract cycle) leaves both cycles realisable — the three
        remaining left turns emulate the prohibited right turn."""
        mesh = Mesh2D(4, 4)
        model = TurnModel.from_prohibited(
            "figure-4", 2, {Turn(EAST, NORTH), Turn(NORTH, EAST)}
        )
        verdict = verify_turn_set(mesh, model)
        assert not verdict.deadlock_free
        assert verdict.cycle  # a concrete witness is produced

    def test_the_four_bad_pairs_are_the_mutually_inverse_ones(self):
        """The 16 - 12 = 4 deadlocking prohibitions are exactly those
        that ban a turn together with its inverse."""
        mesh = Mesh2D(4, 4)
        bad = {
            frozenset(pair)
            for pair in two_turn_prohibitions_2d()
            if not turn_set_is_deadlock_free(
                mesh, TurnModel.from_prohibited("pair", 2, pair)
            )
        }
        expected = {
            frozenset({Turn(a, b), Turn(b, a)})
            for a, b in [
                (EAST, NORTH), (NORTH, WEST), (WEST, SOUTH), (SOUTH, EAST),
            ]
        }
        assert bad == expected

    def test_no_prohibitions_allows_deadlock(self):
        """Figure 1: with every turn allowed, circular waits exist."""
        mesh = Mesh2D(3, 3)
        model = TurnModel.from_prohibited("anything-goes", 2, set())
        assert not turn_set_is_deadlock_free(mesh, model)

    def test_xy_turn_set_is_deadlock_free_even_nonminimally(self):
        mesh = Mesh2D(4, 4)
        assert turn_set_is_deadlock_free(mesh, TurnModel.xy())

    def test_witness_cycle_is_a_real_dependency_cycle(self):
        mesh = Mesh2D(4, 4)
        model = TurnModel.from_prohibited("none", 2, set())
        verdict = verify_turn_set(mesh, model)
        cycle = verdict.cycle
        for c1, c2 in zip(cycle, cycle[1:] + cycle[:1]):
            assert c1.dst == c2.src
            assert model.is_allowed(c1.direction, c2.direction)

    def test_symmetry_classes_of_safe_pairs(self):
        """Section 3: the 12 safe prohibitions reduce to 3 up to symmetry.

        The dihedral symmetries of the square (rotations and reflections)
        act on prohibition pairs; the 12 safe pairs form exactly 3 orbits
        of 4 — the west-first, north-last, and negative-first shapes.
        """
        from repro.topology import Direction

        def rotate_90(d):
            # (x, y) -> (-y, x): +x -> +y, +y -> -x, -x -> -y, -y -> +x.
            if d.dim == 0:
                return Direction(1, d.sign)
            return Direction(0, -d.sign)

        def reflect_x(d):
            return Direction(d.dim, -d.sign) if d.dim == 0 else d

        def map_pair(pair, f):
            return frozenset(Turn(f(t.frm), f(t.to)) for t in pair)

        mesh = Mesh2D(4, 4)
        safe = {
            frozenset(pair)
            for pair in two_turn_prohibitions_2d()
            if turn_set_is_deadlock_free(
                mesh, TurnModel.from_prohibited("pair", 2, pair)
            )
        }
        orbits = []
        remaining = set(safe)
        while remaining:
            orbit = {next(iter(remaining))}
            changed = True
            while changed:
                changed = False
                for member in list(orbit):
                    for f in (rotate_90, reflect_x):
                        image = map_pair(member, f)
                        if image not in orbit:
                            orbit.add(image)
                            changed = True
            assert orbit <= safe  # symmetry preserves deadlock freedom
            orbits.append(orbit)
            remaining -= orbit
        assert sorted(len(o) for o in orbits) == [4, 4, 4]
        # Each paper algorithm's prohibition set seeds a distinct orbit.
        paper = [
            frozenset(TurnModel.west_first().prohibited),
            frozenset(TurnModel.north_last().prohibited),
            frozenset(TurnModel.negative_first().prohibited),
        ]
        for pair in paper:
            assert sum(1 for o in orbits if pair in o) == 1
        assert len({id(o) for p in paper for o in orbits if p in o}) == 3
