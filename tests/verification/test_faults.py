"""Tests for the fault-tolerance analysis."""

import random

import pytest

from repro.routing import NegativeFirst, WestFirst, XY
from repro.topology import EAST, Mesh2D, NORTH
from repro.verification import (
    fault_tolerance,
    mean_survival,
    pair_survives,
    random_fault_trials,
)


class TestPairSurvival:
    def test_no_faults_everything_survives(self):
        mesh = Mesh2D(4, 4)
        report = fault_tolerance(XY(mesh), set())
        assert report.survival_fraction == 1.0

    def test_xy_single_fault_kills_exactly_its_pairs(self):
        """xy has one path per pair; a fault kills precisely the pairs
        whose unique path uses the faulty channel."""
        mesh = Mesh2D(4, 4)
        alg = XY(mesh)
        channel = mesh.channel(mesh.node_xy(1, 1), NORTH)
        report = fault_tolerance(alg, {channel})
        # Pairs routed through (1,1) going north: sources in row <= 1 of
        # column... enumerate directly for the expected count.
        from repro.routing import walk, path_channels

        dead = 0
        for s in mesh.nodes():
            for d in mesh.nodes():
                if s == d:
                    continue
                if channel in path_channels(mesh, walk(alg, s, d)):
                    dead += 1
        assert report.surviving_pairs == report.total_pairs - dead
        assert dead > 0

    def test_adaptive_survives_where_xy_dies(self):
        mesh = Mesh2D(4, 4)
        # Fault on the eastward channel out of (1,1): xy loses (1,1) ->
        # (3,1)-type pairs; west-first routes around via north/south.
        channel = mesh.channel(mesh.node_xy(1, 1), EAST)
        src, dst = mesh.node_xy(1, 1), mesh.node_xy(3, 2)
        assert not pair_survives(XY(mesh), src, dst, {channel})
        assert pair_survives(WestFirst(mesh), src, dst, {channel})

    def test_fully_disconnecting_faults_kill_adaptive_too(self):
        mesh = Mesh2D(4, 4)
        corner = mesh.node_xy(3, 3)
        faults = {
            mesh.channel(mesh.node_xy(2, 3), EAST),
            mesh.channel(mesh.node_xy(3, 2), NORTH),
        }
        for alg in (XY(mesh), WestFirst(mesh), NegativeFirst(mesh)):
            assert not pair_survives(alg, 0, corner, faults)


class TestReports:
    def test_adaptive_algorithms_tolerate_more_faults(self):
        """The paper's fault-tolerance motivation, quantified: under the
        same random faults, west-first keeps at least as many pairs
        alive as xy (strictly more in aggregate)."""
        mesh = Mesh2D(5, 5)
        rng = random.Random(3)
        channels = list(mesh.channels())
        xy_total, wf_total = 0, 0
        for _ in range(4):
            faulty = set(rng.sample(channels, 3))
            xy_total += fault_tolerance(XY(mesh), faulty).surviving_pairs
            wf_total += fault_tolerance(
                WestFirst(mesh), faulty
            ).surviving_pairs
        assert wf_total > xy_total

    def test_random_trials_sampling(self):
        mesh = Mesh2D(6, 6)
        reports = random_fault_trials(
            XY(mesh), num_faults=2, trials=3, sample_pairs=50,
            rng=random.Random(1),
        )
        assert len(reports) == 3
        assert all(r.total_pairs == 50 for r in reports)
        assert 0.0 <= mean_survival(reports) <= 1.0

    def test_too_many_faults_rejected(self):
        mesh = Mesh2D(3, 3)
        with pytest.raises(ValueError):
            random_fault_trials(XY(mesh), num_faults=10_000)

    def test_mean_survival_empty(self):
        assert mean_survival([]) == 1.0

    def test_seed_parameter_is_reproducible(self):
        mesh = Mesh2D(5, 5)
        a = random_fault_trials(XY(mesh), num_faults=2, trials=3, seed=7)
        b = random_fault_trials(XY(mesh), num_faults=2, trials=3, seed=7)
        c = random_fault_trials(XY(mesh), num_faults=2, trials=3, seed=8)
        assert [r.surviving_pairs for r in a] == [
            r.surviving_pairs for r in b
        ]
        # Different seeds draw different fault sets (with overwhelming
        # probability on a 5x5 mesh); allow equality of survival counts
        # but require the call to succeed independently.
        assert len(c) == 3

    def test_seed_equivalent_to_seeded_rng(self):
        mesh = Mesh2D(5, 5)
        by_seed = random_fault_trials(
            XY(mesh), num_faults=2, trials=3, seed=11
        )
        by_rng = random_fault_trials(
            XY(mesh), num_faults=2, trials=3, rng=random.Random(11)
        )
        assert [r.surviving_pairs for r in by_seed] == [
            r.surviving_pairs for r in by_rng
        ]

    def test_seed_and_rng_together_rejected(self):
        mesh = Mesh2D(4, 4)
        with pytest.raises(ValueError):
            random_fault_trials(
                XY(mesh), num_faults=1, seed=1, rng=random.Random(1)
            )

    def test_fault_sets_distinct_across_trials(self):
        """On a tiny topology with few possible fault sets, trials must
        still not silently repeat a set when alternatives remain."""
        mesh = Mesh2D(3, 3)
        channels = list(mesh.channels())
        seen = []

        import repro.verification.faults as module

        original = module.fault_tolerance

        def spy(algorithm, faulty, pairs=None):
            seen.append(frozenset(faulty))
            return original(algorithm, faulty, pairs)

        module.fault_tolerance = spy
        try:
            random_fault_trials(XY(mesh), num_faults=1, trials=6, seed=0)
        finally:
            module.fault_tolerance = original
        assert len(seen) == 6
        assert len(set(seen)) == 6  # all distinct; 24 channels available
        assert all(len(s) == 1 for s in seen)
        assert all(next(iter(s)) in channels for s in seen)

    def test_sampled_pairs_are_distinct(self):
        mesh = Mesh2D(4, 4)
        captured = []

        import repro.verification.faults as module

        original = module.fault_tolerance

        def spy(algorithm, faulty, pairs=None):
            captured.append(list(pairs))
            return original(algorithm, faulty, pairs)

        module.fault_tolerance = spy
        try:
            reports = random_fault_trials(
                XY(mesh), num_faults=1, trials=2, sample_pairs=40, seed=4
            )
        finally:
            module.fault_tolerance = original
        assert all(r.total_pairs == 40 for r in reports)
        for pairs in captured:
            assert len(pairs) == len(set(pairs)) == 40

    def test_oversized_pair_sample_rejected(self):
        mesh = Mesh2D(3, 3)  # 9 * 8 = 72 distinct ordered pairs
        with pytest.raises(ValueError):
            random_fault_trials(
                XY(mesh), num_faults=1, trials=1, sample_pairs=73, seed=0
            )
