"""Tests for the directed-graph toolkit behind the CDG verifier."""

from repro.verification import DiGraph


class TestCycleDetection:
    def test_empty_graph_acyclic(self):
        assert DiGraph().is_acyclic()

    def test_single_edge_acyclic(self):
        g = DiGraph()
        g.add_edge(1, 2)
        assert g.is_acyclic()
        assert g.find_cycle() is None

    def test_self_loop(self):
        g = DiGraph()
        g.add_edge(1, 1)
        assert g.find_cycle() == [1]

    def test_two_cycle(self):
        g = DiGraph()
        g.add_edge("a", "b")
        g.add_edge("b", "a")
        cycle = g.find_cycle()
        assert sorted(cycle) == ["a", "b"]

    def test_cycle_witness_is_a_real_cycle(self):
        g = DiGraph()
        edges = [(1, 2), (2, 3), (3, 4), (4, 2), (1, 5)]
        for a, b in edges:
            g.add_edge(a, b)
        cycle = g.find_cycle()
        assert cycle is not None
        for a, b in zip(cycle, cycle[1:]):
            assert g.has_edge(a, b)
        assert g.has_edge(cycle[-1], cycle[0])

    def test_dag_with_diamonds_acyclic(self):
        g = DiGraph()
        for a, b in [(0, 1), (0, 2), (1, 3), (2, 3), (3, 4)]:
            g.add_edge(a, b)
        assert g.is_acyclic()

    def test_long_chain(self):
        g = DiGraph()
        for i in range(1000):
            g.add_edge(i, i + 1)
        assert g.is_acyclic()
        g.add_edge(1000, 0)
        assert not g.is_acyclic()


class TestSCC:
    def test_sccs_partition_nodes(self):
        g = DiGraph()
        for a, b in [(1, 2), (2, 1), (2, 3), (3, 4), (4, 3), (5, 5)]:
            g.add_edge(a, b)
        comps = g.strongly_connected_components()
        nodes = sorted(n for comp in comps for n in comp)
        assert nodes == [1, 2, 3, 4, 5]

    def test_cyclic_components(self):
        g = DiGraph()
        for a, b in [(1, 2), (2, 1), (3, 4), (5, 5)]:
            g.add_edge(a, b)
        cyclic = g.cyclic_components()
        assert sorted(sorted(c) for c in cyclic) == [[1, 2], [5]]

    def test_acyclic_graph_has_no_cyclic_components(self):
        g = DiGraph()
        for a, b in [(1, 2), (2, 3)]:
            g.add_edge(a, b)
        assert g.cyclic_components() == []


class TestBasics:
    def test_counts(self):
        g = DiGraph()
        g.add_edge(1, 2)
        g.add_edge(1, 3)
        g.add_node(9)
        assert g.num_nodes() == 4
        assert g.num_edges() == 2

    def test_duplicate_edges_collapse(self):
        g = DiGraph()
        g.add_edge(1, 2)
        g.add_edge(1, 2)
        assert g.num_edges() == 1

    def test_successors(self):
        g = DiGraph()
        g.add_edge(1, 2)
        g.add_edge(1, 3)
        assert g.successors(1) == {2, 3}
        assert g.successors(99) == set()
