"""Tests for the traffic patterns, including the paper's exact average
path lengths (Section 6)."""

import random
from fractions import Fraction

import pytest

from repro.topology import Hypercube, Mesh2D
from repro.traffic import (
    BitComplementPattern,
    HotspotPattern,
    HypercubeTransposePattern,
    MeshTransposePattern,
    PermutationPattern,
    ReverseFlipPattern,
    UniformPattern,
    uniform_average_hops,
)


class TestUniform:
    def test_never_self(self):
        mesh = Mesh2D(4, 4)
        pattern = UniformPattern(mesh)
        rng = random.Random(0)
        for _ in range(2000):
            src = rng.randrange(16)
            assert pattern.dest(src, rng) != src

    def test_all_destinations_reachable(self):
        mesh = Mesh2D(4, 4)
        pattern = UniformPattern(mesh)
        rng = random.Random(0)
        seen = {pattern.dest(5, rng) for _ in range(3000)}
        assert seen == set(range(16)) - {5}

    def test_roughly_uniform(self):
        mesh = Mesh2D(4, 4)
        pattern = UniformPattern(mesh)
        rng = random.Random(1)
        counts = {}
        n = 15000
        for _ in range(n):
            d = pattern.dest(0, rng)
            counts[d] = counts.get(d, 0) + 1
        expected = n / 15
        assert all(abs(c - expected) < expected * 0.3 for c in counts.values())

    def test_every_node_active(self):
        mesh = Mesh2D(4, 4)
        assert UniformPattern(mesh).active_sources(mesh) == list(range(16))


class TestMeshTranspose:
    def test_mapping(self):
        mesh = Mesh2D(16, 16)
        pattern = MeshTransposePattern(mesh)
        rng = random.Random(0)
        src = mesh.node_at((3, 11))
        assert pattern.dest(src, rng) == mesh.node_at((11, 3))

    def test_diagonal_inactive(self):
        mesh = Mesh2D(16, 16)
        pattern = MeshTransposePattern(mesh)
        assert len(pattern.active_sources(mesh)) == 240

    def test_requires_square_mesh(self):
        with pytest.raises(ValueError):
            MeshTransposePattern(Mesh2D(4, 8))

    def test_paper_average_path_length(self):
        """Section 6: 11.34 hops for transpose in the 16x16 mesh."""
        mesh = Mesh2D(16, 16)
        avg = MeshTransposePattern(mesh).average_hops()
        assert avg == Fraction(34, 3)  # 11.333...
        assert float(avg) == pytest.approx(11.34, abs=0.01)

    def test_is_an_involution(self):
        mesh = Mesh2D(8, 8)
        pattern = MeshTransposePattern(mesh)
        rng = random.Random(0)
        for src in pattern.active_sources(mesh):
            dst = pattern.dest(src, rng)
            assert pattern.dest(dst, rng) == src


class TestHypercubeTranspose:
    def test_paper_formula_for_8_cube(self):
        """(x0..x7) -> (~x4, x5, x6, x7, ~x0, x1, x2, x3)."""
        cube = Hypercube(8)
        pattern = HypercubeTransposePattern(cube)
        rng = random.Random(0)
        src_bits = (1, 0, 1, 1, 0, 1, 0, 0)
        src = cube.node_from_bits(src_bits)
        dst = pattern.dest(src, rng)
        x = src_bits
        expected = (1 - x[4], x[5], x[6], x[7], 1 - x[0], x[1], x[2], x[3])
        assert cube.bits(dst) == expected

    def test_fixed_points_inactive(self):
        cube = Hypercube(8)
        pattern = HypercubeTransposePattern(cube)
        # Fixed points need x0 = ~x4 plus x1 = x5, x2 = x6, x3 = x7: 16.
        active = pattern.active_sources(cube)
        assert len(active) == 256 - 16

    def test_embedding_preserves_neighbourhood(self):
        """Mesh neighbours map to cube neighbours: the pattern equals the
        mesh transpose pushed through a Gray-free binary embedding, so
        corresponding destinations differ in bounded dimensions."""
        cube = Hypercube(8)
        pattern = HypercubeTransposePattern(cube)
        rng = random.Random(0)
        # The mapping is an involution wherever active.
        for src in pattern.active_sources(cube):
            dst = pattern.dest(src, rng)
            assert pattern.dest(dst, rng) == src

    def test_requires_even_order(self):
        with pytest.raises(ValueError):
            HypercubeTransposePattern(Hypercube(5))


class TestReverseFlip:
    def test_mapping(self):
        cube = Hypercube(8)
        pattern = ReverseFlipPattern(cube)
        rng = random.Random(0)
        src_bits = (1, 0, 1, 1, 0, 1, 0, 0)
        src = cube.node_from_bits(src_bits)
        dst = pattern.dest(src, rng)
        expected = tuple(1 - b for b in reversed(src_bits))
        assert cube.bits(dst) == expected

    def test_fixed_points_inactive(self):
        cube = Hypercube(8)
        pattern = ReverseFlipPattern(cube)
        assert len(pattern.active_sources(cube)) == 256 - 16

    def test_paper_average_path_length(self):
        """Section 6: 4.27 hops for reverse-flip in the 8-cube."""
        cube = Hypercube(8)
        avg = ReverseFlipPattern(cube).average_hops()
        assert avg == Fraction(64, 15)  # 4.2666...
        assert float(avg) == pytest.approx(4.27, abs=0.01)


class TestUniformAverages:
    def test_paper_uniform_cube_hops(self):
        """Section 6: 4.01 hops for uniform traffic in the 8-cube."""
        cube = Hypercube(8)
        avg = uniform_average_hops(cube)
        assert avg == Fraction(8 * 128 * 256, 256 * 255)
        assert float(avg) == pytest.approx(4.01, abs=0.01)

    def test_uniform_mesh_hops_close_to_paper(self):
        """The paper quotes 10.61 for the 16x16 mesh; the exact all-pairs
        mean is 10 2/3 (the paper's figure is presumably measured)."""
        mesh = Mesh2D(16, 16)
        avg = uniform_average_hops(mesh)
        assert avg == Fraction(32, 3)
        assert float(avg) == pytest.approx(10.61, abs=0.1)


class TestMeshComplement:
    def test_mapping(self):
        from repro.topology import Mesh
        from repro.traffic import MeshComplementPattern

        mesh = Mesh((4, 4, 4))
        pattern = MeshComplementPattern(mesh)
        rng = random.Random(0)
        src = mesh.node_at((1, 2, 0))
        assert mesh.coords(pattern.dest(src, rng)) == (2, 1, 3)

    def test_centre_fixed_points_inactive_for_odd_dims(self):
        from repro.topology import Mesh
        from repro.traffic import MeshComplementPattern

        mesh = Mesh((3, 3))
        pattern = MeshComplementPattern(mesh)
        rng = random.Random(0)
        centre = mesh.node_at((1, 1))
        assert pattern.dest(centre, rng) is None
        assert len(pattern.active_sources(mesh)) == 8

    def test_is_involution(self):
        from repro.topology import Mesh
        from repro.traffic import MeshComplementPattern

        mesh = Mesh((4, 5))
        pattern = MeshComplementPattern(mesh)
        rng = random.Random(0)
        for src in pattern.active_sources(mesh):
            assert pattern.dest(pattern.dest(src, rng), rng) == src


class TestExtras:
    def test_bit_complement(self):
        cube = Hypercube(6)
        pattern = BitComplementPattern(cube)
        rng = random.Random(0)
        assert pattern.dest(0, rng) == 63
        assert pattern.dest(0b101010, rng) == 0b010101
        assert len(pattern.active_sources(cube)) == 64

    def test_hotspot_fraction(self):
        mesh = Mesh2D(4, 4)
        pattern = HotspotPattern(mesh, hotspot=5, fraction=0.5)
        rng = random.Random(0)
        hits = sum(1 for _ in range(4000) if pattern.dest(0, rng) == 5)
        assert 0.45 < hits / 4000 < 0.60

    def test_hotspot_fraction_validated(self):
        with pytest.raises(ValueError):
            HotspotPattern(Mesh2D(4, 4), hotspot=0, fraction=1.5)

    def test_permutation_pattern(self):
        mesh = Mesh2D(4, 4)
        pattern = PermutationPattern(mesh, {0: 15, 15: 0, 3: 3})
        rng = random.Random(0)
        assert pattern.dest(0, rng) == 15
        assert pattern.dest(3, rng) is None  # self-loop dropped
        assert pattern.dest(7, rng) is None  # unmapped
        assert pattern.active_sources(mesh) == [0, 15]

    def test_permutation_validates_range(self):
        with pytest.raises(ValueError):
            PermutationPattern(Mesh2D(2, 2), {0: 99})

    def test_average_hops_requires_deterministic(self):
        mesh = Mesh2D(4, 4)
        with pytest.raises(NotImplementedError):
            UniformPattern(mesh).average_hops()
