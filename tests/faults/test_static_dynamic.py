"""Static reachability vs. the fault-injected simulator.

:func:`repro.verification.faults.pair_survives` says which pairs *can*
still communicate under a fault set; the engine decides what actually
happens.  These tests pin the two together: statically-surviving pairs
are delivered at low load, statically-killed pairs are dropped by the
watchdog — never left hanging past the run.
"""

import pytest

from repro.faults import FaultPlan
from repro.routing import NegativeFirst, WestFirst, XY
from repro.simulation import SimulationConfig, WormholeSimulator
from repro.simulation.packet import PacketState
from repro.topology import EAST, Mesh2D, NORTH
from repro.traffic import UniformPattern
from repro.verification import pair_survives


def run_single_packet(algorithm, mesh, src, dst, plan):
    config = SimulationConfig(
        offered_load=0.0,
        warmup_cycles=0,
        measure_cycles=400,
        fault_plan=plan,
        packet_timeout=60,
    )
    sim = WormholeSimulator(algorithm, UniformPattern(mesh), config)
    packet = sim.inject_packet(src, dst, 4)
    result = sim.run()
    return packet, result


class TestStaticDynamicConsistency:
    @pytest.mark.parametrize("algorithm_cls", [XY, WestFirst, NegativeFirst])
    def test_survivors_delivered_and_killed_pairs_dropped(
        self, algorithm_cls
    ):
        """Single dead link: every statically-surviving pair is actually
        delivered, every statically-killed pair is dropped — not hung."""
        mesh = Mesh2D(4, 4)
        faulty = {mesh.channel(mesh.node_xy(1, 1), EAST)}
        plan = FaultPlan.of_channels(faulty)
        algorithm = algorithm_cls(mesh)
        checked_survivor = checked_killed = False
        for src in mesh.nodes():
            for dst in mesh.nodes():
                if src == dst:
                    continue
                survives = pair_survives(algorithm, src, dst, faulty)
                packet, result = run_single_packet(
                    algorithm_cls(mesh), mesh, src, dst, plan
                )
                if survives:
                    checked_survivor = True
                    assert packet.state == PacketState.DELIVERED, (
                        f"{algorithm.name}: statically-surviving pair "
                        f"{src}->{dst} was not delivered"
                    )
                    assert result.delivered_packets == 1
                else:
                    checked_killed = True
                    # Dropped cleanly, not hung: the run ends with no
                    # in-flight worm and an attributed drop cause.
                    assert packet.state == PacketState.DROPPED, (
                        f"{algorithm.name}: statically-killed pair "
                        f"{src}->{dst} ended as {packet.state}"
                    )
                    assert result.dropped_packets == 1
                    assert result.inflight_at_end == 0
                    assert sum(result.drops_by_cause.values()) == 1
        assert checked_survivor
        if algorithm_cls is XY:
            # xy's single path guarantees some pairs die under any fault.
            assert checked_killed

    @pytest.mark.parametrize("algorithm_cls", [XY, WestFirst, NegativeFirst])
    def test_multi_fault_every_packet_resolves(self, algorithm_cls):
        """Under multiple faults the static check is only an upper bound:
        wormhole routing cannot backtrack, so a greedily-chosen branch
        may dead-end even when some path exists.  What the watchdog *does*
        guarantee is that every packet resolves — delivered or cleanly
        dropped, never left in the network."""
        mesh = Mesh2D(4, 4)
        faulty = {
            mesh.channel(mesh.node_xy(1, 1), EAST),
            mesh.channel(mesh.node_xy(2, 2), NORTH),
        }
        plan = FaultPlan.of_channels(faulty)
        algorithm = algorithm_cls(mesh)
        for src in mesh.nodes():
            for dst in mesh.nodes():
                if src == dst:
                    continue
                packet, result = run_single_packet(
                    algorithm_cls(mesh), mesh, src, dst, plan
                )
                assert packet.state in (
                    PacketState.DELIVERED, PacketState.DROPPED
                ), f"{algorithm.name}: {src}->{dst} hung as {packet.state}"
                assert result.inflight_at_end == 0
                # Statically-killed pairs can never be delivered.
                if not pair_survives(algorithm, src, dst, faulty):
                    assert packet.state == PacketState.DROPPED

    def test_adaptive_survives_strictly_more_dynamically(self):
        """The paper's fault-tolerance claim, end to end: under the same
        dead link, west-first delivers pairs that xy drops."""
        mesh = Mesh2D(4, 4)
        faulty = {mesh.channel(mesh.node_xy(1, 1), EAST)}
        plan = FaultPlan.of_channels(faulty)
        src, dst = mesh.node_xy(1, 1), mesh.node_xy(3, 2)

        xy_packet, _ = run_single_packet(XY(mesh), mesh, src, dst, plan)
        wf_packet, _ = run_single_packet(
            WestFirst(mesh), mesh, src, dst, plan
        )
        assert xy_packet.state == PacketState.DROPPED
        assert wf_packet.state == PacketState.DELIVERED
