"""FaultAwareRouting: dead candidates vanish, everything else passes
through untouched."""

from repro.faults import FaultAwareRouting, FaultState
from repro.routing import WestFirst, XY
from repro.topology import EAST, Mesh2D, NORTH


def make(mesh, algorithm_cls=WestFirst):
    inner = algorithm_cls(mesh)
    state = FaultState(mesh)
    return inner, state, FaultAwareRouting(inner, state)


class TestTransparency:
    def test_fault_free_state_changes_nothing(self):
        mesh = Mesh2D(4, 4)
        inner, _state, wrapped = make(mesh)
        for src in mesh.nodes():
            for dst in mesh.nodes():
                if src == dst:
                    continue
                assert wrapped.candidates(src, dst) == inner.candidates(
                    src, dst
                )

    def test_metadata_passes_through(self):
        mesh = Mesh2D(4, 4)
        inner, _state, wrapped = make(mesh)
        assert wrapped.name == inner.name
        assert wrapped.is_minimal == inner.is_minimal
        assert wrapped.is_adaptive == inner.is_adaptive
        assert wrapped.turn_model() == inner.turn_model()


class TestMasking:
    def test_dead_channel_is_not_offered(self):
        mesh = Mesh2D(4, 4)
        inner, state, wrapped = make(mesh)
        src = mesh.node_xy(1, 1)
        dst = mesh.node_xy(3, 2)
        assert EAST in inner.candidates(src, dst)
        state.fail_channel(src, EAST)
        remaining = wrapped.candidates(src, dst)
        assert EAST not in remaining
        assert remaining  # west-first still has the north detour

    def test_deterministic_algorithm_left_with_nothing(self):
        mesh = Mesh2D(4, 4)
        _inner, state, wrapped = make(mesh, XY)
        src = mesh.node_xy(1, 1)
        dst = mesh.node_xy(3, 1)
        state.fail_channel(src, EAST)
        assert wrapped.candidates(src, dst) == []

    def test_dead_destination_router_masks_incoming_channel(self):
        mesh = Mesh2D(4, 4)
        _inner, state, wrapped = make(mesh)
        src = mesh.node_xy(1, 1)
        dst = mesh.node_xy(3, 2)
        state.fail_router(mesh.node_xy(2, 1))
        assert EAST not in wrapped.candidates(src, dst)

    def test_dead_source_router_masks_everything(self):
        mesh = Mesh2D(4, 4)
        _inner, state, wrapped = make(mesh)
        src = mesh.node_xy(1, 1)
        state.fail_router(src)
        assert wrapped.candidates(src, mesh.node_xy(3, 3)) == []

    def test_heal_restores_candidates(self):
        mesh = Mesh2D(4, 4)
        inner, state, wrapped = make(mesh)
        src = mesh.node_xy(1, 1)
        dst = mesh.node_xy(3, 2)
        state.fail_channel(src, EAST)
        state.heal_channel(src, EAST)
        assert wrapped.candidates(src, dst) == inner.candidates(src, dst)

    def test_vc_candidates_filtered(self):
        mesh = Mesh2D(4, 4)
        inner, state, wrapped = make(mesh)
        src = mesh.node_xy(1, 1)
        dst = mesh.node_xy(3, 2)
        state.fail_channel(src, NORTH)
        pairs = wrapped.vc_candidates(src, dst, None, None, 2)
        assert pairs == [
            (d, v)
            for d, v in inner.vc_candidates(src, dst, None, None, 2)
            if d != NORTH
        ]


class TestFaultState:
    def test_any_faults_tracks_both_kinds(self):
        mesh = Mesh2D(3, 3)
        state = FaultState(mesh)
        assert not state.any_faults
        state.fail_router(0)
        assert state.any_faults
        state.heal_router(0)
        assert not state.any_faults
        state.fail_channel(0, EAST)
        assert state.any_faults

    def test_channel_dead_off_edge(self):
        mesh = Mesh2D(3, 3)
        state = FaultState(mesh)
        # No eastward channel exists out of the east edge: treated dead.
        edge = mesh.node_xy(2, 0)
        assert state.channel_dead(edge, EAST)
