"""FaultEvent/FaultPlan: validation, ordering, serialization, schedules."""

import pytest

from repro.faults import FaultEvent, FaultPlan
from repro.faults.plan import FAIL, HEAL
from repro.simulation import SimulationConfig
from repro.topology import EAST, Mesh2D, NORTH


class TestFaultEvent:
    def test_channel_constructor_round_trips_identity(self):
        mesh = Mesh2D(4, 4)
        channel = mesh.channel(mesh.node_xy(1, 1), EAST)
        event = FaultEvent.channel(channel, start=10, end=50)
        assert event.node == channel.src
        assert event.direction == channel.direction
        assert not event.permanent
        assert event.active_at(10)
        assert event.active_at(49)
        assert not event.active_at(50)
        assert not event.active_at(9)

    def test_permanent_event_never_heals(self):
        event = FaultEvent.router(3, start=5)
        assert event.permanent
        assert event.active_at(10_000_000)
        assert not event.active_at(4)

    def test_bad_kind_rejected(self):
        with pytest.raises(ValueError):
            FaultEvent(kind="switch", start=0)

    def test_negative_start_rejected(self):
        with pytest.raises(ValueError):
            FaultEvent.router(0, start=-1)

    def test_heal_before_fail_rejected(self):
        with pytest.raises(ValueError):
            FaultEvent.router(0, start=10, end=10)
        with pytest.raises(ValueError):
            FaultEvent.router(0, start=10, end=3)

    def test_bad_direction_rejected(self):
        with pytest.raises(ValueError):
            FaultEvent(kind="channel", start=0, node=0, dim=0, sign=2)

    def test_router_event_has_no_direction(self):
        with pytest.raises(ValueError):
            FaultEvent.router(0).direction

    def test_serialization_round_trip(self):
        event = FaultEvent(
            kind="channel", start=7, end=90, node=12, dim=1, sign=-1
        )
        assert FaultEvent.from_dict(event.to_dict()) == event


class TestFaultPlan:
    def test_empty_plan(self):
        plan = FaultPlan.empty()
        assert plan.is_empty
        assert len(plan) == 0
        assert plan.schedule() == {}

    def test_events_are_canonically_sorted(self):
        late = FaultEvent.router(1, start=100)
        early = FaultEvent.channel(
            Mesh2D(4, 4).channel(0, EAST), start=5
        )
        assert FaultPlan((late, early)).events == FaultPlan(
            (early, late)
        ).events

    def test_non_event_rejected(self):
        with pytest.raises(TypeError):
            FaultPlan(events=("not an event",))

    def test_schedule_has_fail_and_heal_entries(self):
        mesh = Mesh2D(4, 4)
        transient = FaultEvent.channel(mesh.channel(0, EAST), 10, 60)
        permanent = FaultEvent.router(5, start=10)
        schedule = FaultPlan((transient, permanent)).schedule()
        assert {action for action, _ in schedule[10]} == {FAIL}
        assert len(schedule[10]) == 2
        assert schedule[60] == [(HEAL, transient)]

    def test_serialization_round_trip_and_canonical_json(self):
        mesh = Mesh2D(4, 4)
        plan = FaultPlan.random_links(mesh, 3, seed=42, start=5, end=80)
        again = FaultPlan.from_dict(plan.to_dict())
        assert again == plan
        assert again.canonical_json() == plan.canonical_json()

    def test_random_links_deterministic_and_distinct(self):
        mesh = Mesh2D(6, 6)
        a = FaultPlan.random_links(mesh, 4, seed=9)
        b = FaultPlan.random_links(mesh, 4, seed=9)
        c = FaultPlan.random_links(mesh, 4, seed=10)
        assert a == b
        assert a != c
        keys = {(e.node, e.dim, e.sign) for e in a.events}
        assert len(keys) == 4

    def test_random_links_too_many_rejected(self):
        with pytest.raises(ValueError):
            FaultPlan.random_links(Mesh2D(2, 2), 1_000, seed=0)

    def test_random_routers_too_many_rejected(self):
        with pytest.raises(ValueError):
            FaultPlan.random_routers(Mesh2D(2, 2), 5, seed=0)

    def test_faulty_channels_expands_router_events(self):
        mesh = Mesh2D(4, 4)
        node = mesh.node_xy(1, 1)
        plan = FaultPlan((FaultEvent.router(node),))
        channels = plan.faulty_channels(mesh)
        assert channels
        assert all(
            c.src == node or c.dst == node for c in channels
        )
        # An interior mesh node has 4 outgoing + 4 incoming channels.
        assert len(channels) == 8

    def test_faulty_channels_respects_at_cycle(self):
        mesh = Mesh2D(4, 4)
        transient = FaultEvent.channel(mesh.channel(0, NORTH), 10, 20)
        plan = FaultPlan((transient,))
        assert not plan.faulty_channels(mesh, at=5)
        assert len(plan.faulty_channels(mesh, at=15)) == 1
        assert not plan.faulty_channels(mesh, at=25)


class TestConfigIntegration:
    def test_config_serializes_fault_plan(self):
        mesh = Mesh2D(4, 4)
        plan = FaultPlan.random_links(mesh, 2, seed=1)
        config = SimulationConfig(fault_plan=plan, packet_timeout=500)
        data = config.to_dict()
        again = SimulationConfig.from_dict(data)
        assert again.fault_plan == plan
        assert again == config

    def test_config_coerces_plain_dict_plan(self):
        plan = FaultPlan((FaultEvent.router(2, start=5),))
        config = SimulationConfig(fault_plan=plan.to_dict())
        assert config.fault_plan == plan

    def test_config_rejects_non_plan(self):
        with pytest.raises(ValueError):
            SimulationConfig(fault_plan=[1, 2, 3])

    def test_with_faults_shortcut(self):
        plan = FaultPlan((FaultEvent.router(1),))
        config = SimulationConfig().with_faults(plan)
        assert config.fault_plan == plan

    def test_robustness_knob_validation(self):
        with pytest.raises(ValueError):
            SimulationConfig(packet_timeout=-1)
        with pytest.raises(ValueError):
            SimulationConfig(max_retries=-1)
        with pytest.raises(ValueError):
            SimulationConfig(retry_backoff_base=0)
        with pytest.raises(ValueError):
            SimulationConfig(retry_backoff_cap=0)
        with pytest.raises(ValueError):
            SimulationConfig(deadlock_threshold=0)
        with pytest.raises(ValueError):
            SimulationConfig(drain_cycles=-1)
