"""Runtime fault injection in the wormhole engine: the zero-fault
bit-identity guarantee, mid-flight kills, watchdog drops, and retries."""

import pytest

from repro.analysis.runner import make_pattern, parse_topology_spec
from repro.faults import FaultEvent, FaultPlan
from repro.routing import XY, WestFirst, make_algorithm
from repro.simulation import SimulationConfig, WormholeSimulator
from repro.topology import EAST, Mesh2D
from repro.traffic import UniformPattern


# Golden operating points captured from the fault-free engine before the
# fault subsystem existed.  An empty FaultPlan (the default) must leave
# every one of these numbers untouched — the fault hooks short-circuit,
# no RNG draw moves, no event reorders.
GOLDEN = [
    (
        "mesh:8x8", "west-first", "uniform",
        dict(offered_load=1.2, seed=3, warmup_cycles=500,
             measure_cycles=2_000),
        (71, 65, 7870, 10641, 9666, 343, 0, 218, 6),
    ),
    (
        "mesh:8x8", "xy", "transpose",
        dict(offered_load=0.8, seed=11, warmup_cycles=400,
             measure_cycles=1_500),
        (37, 36, 3400, 4860, 4242, 212, 0, 213, 1),
    ),
    (
        "cube:6", "p-cube", "uniform",
        dict(offered_load=2.0, seed=5, warmup_cycles=300,
             measure_cycles=1_200),
        (57, 51, 6780, 8251, 7511, 160, 0, 222, 6),
    ),
    (
        "torus:6x2", "negative-first-torus", "uniform",
        dict(offered_load=0.6, seed=9, warmup_cycles=300,
             measure_cycles=1_200, virtual_channels=2),
        (14, 14, 520, 564, 564, 58, 8, 1, 0),
    ),
]

FINGERPRINT_FIELDS = (
    "generated_packets", "delivered_packets", "delivered_flits",
    "total_latency_cycles", "total_net_latency_cycles", "total_hops",
    "total_misroutes", "max_grant_wait_cycles", "inflight_at_end",
)


class TestZeroFaultBitIdentity:
    @pytest.mark.parametrize(
        "topo_spec,algorithm,pattern,overrides,expected", GOLDEN
    )
    def test_empty_plan_matches_golden_fingerprint(
        self, topo_spec, algorithm, pattern, overrides, expected
    ):
        topology = parse_topology_spec(topo_spec)
        config = SimulationConfig(fault_plan=FaultPlan.empty(), **overrides)
        sim = WormholeSimulator(
            make_algorithm(algorithm, topology),
            make_pattern(pattern, topology),
            config,
        )
        assert sim.fault_state is None  # hooks fully disabled
        result = sim.run()
        fingerprint = tuple(
            getattr(result, name) for name in FINGERPRINT_FIELDS
        )
        assert fingerprint == expected
        assert result.dropped_packets == 0
        assert result.killed_packets == 0
        assert result.retried_packets == 0
        assert result.drops_by_cause == {}

    def test_empty_plan_with_watchdog_knobs_still_identical(self):
        """packet_timeout/max_retries alone must not perturb a healthy
        run: the watchdog only ever fires on genuinely stalled worms."""
        topo_spec, algorithm, pattern, overrides, expected = GOLDEN[0]
        topology = parse_topology_spec(topo_spec)
        config = SimulationConfig(
            packet_timeout=10_000, max_retries=3, **overrides
        )
        result = WormholeSimulator(
            make_algorithm(algorithm, topology),
            make_pattern(pattern, topology),
            config,
        ).run()
        fingerprint = tuple(
            getattr(result, name) for name in FINGERPRINT_FIELDS
        )
        assert fingerprint == expected


def scripted_config(**overrides):
    base = dict(
        offered_load=0.0, warmup_cycles=0, measure_cycles=400, seed=0
    )
    base.update(overrides)
    return SimulationConfig(**base)


class TestMidFlightKills:
    def test_link_failure_kills_crossing_worm(self):
        mesh = Mesh2D(4, 4)
        # A 20-flit worm from (0,0) east to (3,0) is still crossing
        # (1,0)->EAST when the link dies at cycle 6.
        plan = FaultPlan(
            (FaultEvent.channel(mesh.channel(mesh.node_xy(1, 0), EAST),
                                start=6),)
        )
        sim = WormholeSimulator(
            XY(mesh), UniformPattern(mesh), scripted_config(fault_plan=plan)
        )
        sim.inject_packet(mesh.node_xy(0, 0), mesh.node_xy(3, 0), 20)
        result = sim.run()
        assert result.killed_packets == 1
        assert result.dropped_packets == 1
        assert result.drops_by_cause == {"link-failure": 1}
        assert result.delivered_packets == 0

    def test_router_failure_kills_crossing_worm(self):
        mesh = Mesh2D(4, 4)
        plan = FaultPlan(
            (FaultEvent.router(mesh.node_xy(1, 0), start=6),)
        )
        sim = WormholeSimulator(
            XY(mesh), UniformPattern(mesh), scripted_config(fault_plan=plan)
        )
        sim.inject_packet(mesh.node_xy(0, 0), mesh.node_xy(3, 0), 20)
        result = sim.run()
        assert result.killed_packets == 1
        assert result.drops_by_cause == {"router-failure": 1}

    def test_fault_before_injection_does_not_kill(self):
        """A link dead from cycle 0 never has a worm on it: the packet
        stalls at the source and the watchdog drops it instead."""
        mesh = Mesh2D(4, 4)
        plan = FaultPlan(
            (FaultEvent.channel(mesh.channel(mesh.node_xy(1, 0), EAST),
                                start=0),)
        )
        sim = WormholeSimulator(
            XY(mesh), UniformPattern(mesh),
            scripted_config(fault_plan=plan, packet_timeout=50),
        )
        sim.inject_packet(mesh.node_xy(0, 0), mesh.node_xy(3, 0), 4)
        result = sim.run()
        assert result.killed_packets == 0
        assert result.dropped_packets == 1
        assert result.drops_by_cause == {"timeout-stall": 1}
        assert result.max_stall_age_cycles > 50


class TestWatchdogAndRetry:
    def test_transient_fault_heals_and_retry_delivers(self):
        mesh = Mesh2D(4, 4)
        channel = mesh.channel(mesh.node_xy(1, 0), EAST)
        plan = FaultPlan((FaultEvent.channel(channel, start=0, end=120),))
        sim = WormholeSimulator(
            XY(mesh), UniformPattern(mesh),
            scripted_config(
                fault_plan=plan, packet_timeout=30, max_retries=3,
                retry_backoff_base=16, measure_cycles=600,
            ),
        )
        sim.inject_packet(mesh.node_xy(0, 0), mesh.node_xy(3, 0), 4)
        result = sim.run()
        assert result.delivered_packets == 1
        assert result.dropped_packets == 0
        assert result.retried_packets >= 1
        assert result.drops_by_cause.get("timeout-stall", 0) >= 1

    def test_retries_are_bounded(self):
        """With the destination permanently dead, every attempt drops at
        injection: max_retries + 1 drop events, one permanent loss."""
        mesh = Mesh2D(4, 4)
        dst = mesh.node_xy(3, 3)
        plan = FaultPlan((FaultEvent.router(dst, start=0),))
        sim = WormholeSimulator(
            XY(mesh), UniformPattern(mesh),
            scripted_config(
                fault_plan=plan, max_retries=2, retry_backoff_base=8,
            ),
        )
        sim.inject_packet(mesh.node_xy(0, 0), dst, 4)
        result = sim.run()
        assert result.dropped_packets == 1
        assert result.retried_packets == 2
        assert result.drops_by_cause == {"dead-destination": 3}

    def test_adaptive_algorithm_routes_around_without_drops(self):
        """Same dead link, same pair: west-first has a detour, so the
        watchdog never fires and nothing is dropped."""
        mesh = Mesh2D(4, 4)
        channel = mesh.channel(mesh.node_xy(1, 1), EAST)
        plan = FaultPlan((FaultEvent.channel(channel, start=0),))
        config = scripted_config(fault_plan=plan, packet_timeout=50)
        src, dst = mesh.node_xy(1, 1), mesh.node_xy(3, 2)

        dead = WormholeSimulator(XY(mesh), UniformPattern(mesh), config)
        dead.inject_packet(src, dst, 4)
        assert dead.run().dropped_packets == 1

        alive = WormholeSimulator(WestFirst(mesh), UniformPattern(mesh), config)
        alive.inject_packet(src, dst, 4)
        result = alive.run()
        assert result.delivered_packets == 1
        assert result.dropped_packets == 0
