#!/usr/bin/env python3
"""Deadlock, live: reproduce Figures 1 and 4.

Three demonstrations:

1. **Figure 1** — with no prohibited turns, minimal adaptive routing
   deadlocks under load.  The simulator's watchdog fires and the
   wait-for graph exhibits a circular wait among packets.
2. **Figure 4** — prohibiting one turn per abstract cycle is not enough:
   banning a turn *and its inverse* leaves both cycles realisable, and
   the channel dependency graph shows a concrete dependency cycle.
3. **The fix** — the same load under west-first routing: no deadlock,
   and its CDG is acyclic.

Run:  python examples/deadlock_demo.py
"""

from repro import Mesh2D, SimulationConfig, UniformPattern, WormholeSimulator
from repro.core import Turn, TurnModel
from repro.routing import TurnRestrictedMinimal, WestFirst
from repro.simulation import detect_deadlock
from repro.topology import EAST, NORTH
from repro.verification import verify_algorithm, verify_turn_set


def overload_config() -> SimulationConfig:
    return SimulationConfig(
        offered_load=8.0,
        warmup_cycles=0,
        measure_cycles=60_000,
        deadlock_threshold=2_000,
        seed=2,
    )


def figure_1_live_deadlock(mesh: Mesh2D) -> None:
    print("== Figure 1: no prohibited turns -> live deadlock ==")
    anything_goes = TurnRestrictedMinimal(
        mesh, TurnModel.from_prohibited("no-prohibitions", 2, set())
    )
    sim = WormholeSimulator(anything_goes, UniformPattern(mesh), overload_config())
    result = sim.run()
    print(f"   watchdog fired: {result.deadlock} "
          f"(cycle {result.deadlock_cycle}, "
          f"{result.inflight_at_end} packets stuck)")
    report = detect_deadlock(sim)
    print("  ", report.describe())
    print()


def figure_4_static_counterexample(mesh: Mesh2D) -> None:
    print("== Figure 4: breaking each abstract cycle is not sufficient ==")
    bad = TurnModel.from_prohibited(
        "figure-4", 2, {Turn(EAST, NORTH), Turn(NORTH, EAST)}
    )
    print(f"   prohibition set: {sorted(map(repr, bad.prohibited))}")
    print(f"   breaks both abstract cycles: {bad.breaks_all_cycles()}")
    verdict = verify_turn_set(mesh, bad)
    print(f"   deadlock free: {verdict.deadlock_free}")
    cycle = verdict.cycle
    print(f"   witness dependency cycle ({len(cycle)} channels):")
    for channel in cycle:
        print(
            f"      {mesh.coords(channel.src)} -> {mesh.coords(channel.dst)}"
            f"  travelling {channel.direction!r}"
        )
    print()


def west_first_is_immune(mesh: Mesh2D) -> None:
    print("== The fix: west-first at the same overload ==")
    algorithm = WestFirst(mesh)
    verdict = verify_algorithm(algorithm)
    print(f"   CDG acyclic: {verdict.deadlock_free}")
    sim = WormholeSimulator(algorithm, UniformPattern(mesh), overload_config())
    result = sim.run()
    print(f"   watchdog fired: {result.deadlock}")
    print(f"   delivered {result.delivered_packets} packets at "
          f"{result.throughput_flits_per_us:.1f} flits/us despite the overload")


def main() -> None:
    mesh = Mesh2D(8, 8)
    figure_1_live_deadlock(mesh)
    figure_4_static_counterexample(mesh)
    west_first_is_immune(mesh)


if __name__ == "__main__":
    main()
