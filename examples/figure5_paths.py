#!/usr/bin/env python3
"""Reproduce Figures 5, 9, and 10 qualitatively: the allowed-turn sets
and example paths of west-first, north-last, and negative-first in an
8x8 mesh, rendered as ASCII.

Run:  python examples/figure5_paths.py
"""

import random

from repro import Mesh2D
from repro.routing import NegativeFirst, NorthLast, WestFirst, walk
from repro.viz import render_mesh_paths, render_turn_set


EXAMPLES = {
    # (figure, algorithm factory, [(src, dst), ...]) — chosen to show the
    # deterministic case and the adaptive case of each algorithm.
    "Figure 5 (west-first)": (
        WestFirst,
        [((6, 6), (1, 2)), ((1, 1), (6, 5))],
    ),
    "Figure 9 (north-last)": (
        NorthLast,
        [((2, 1), (5, 6)), ((6, 6), (1, 1))],
    ),
    "Figure 10 (negative-first)": (
        NegativeFirst,
        [((5, 6), (1, 1)), ((1, 2), (6, 6))],
    ),
}


def main() -> None:
    mesh = Mesh2D(8, 8)
    rng = random.Random(5)
    for title, (factory, pairs) in EXAMPLES.items():
        algorithm = factory(mesh)
        print(f"== {title} ==")
        print(render_turn_set(algorithm.turn_model()))
        print()
        for src_xy, dst_xy in pairs:
            src, dst = mesh.node_at(src_xy), mesh.node_at(dst_xy)
            path = walk(algorithm, src, dst, rng=rng)
            label = f"{src_xy} -> {dst_xy} in {len(path) - 1} hops"
            print(render_mesh_paths(mesh, [path], labels=[label]))
            print()


if __name__ == "__main__":
    main()
