#!/usr/bin/env python3
"""Adaptivity around a hot spot (Section 1's motivation).

Uniform traffic with a fraction of all messages aimed at one node builds
a congestion tree around it.  Adaptive turn-model routing lets unrelated
packets detour around the tree; xy routing funnels straight through it.
This example measures both, plus the torus extensions from Section 4.2
on a k-ary 2-cube.

Run:  python examples/hotspot_adaptivity.py
"""

from repro import (
    KAryNCube,
    Mesh2D,
    SimulationConfig,
    WormholeSimulator,
)
from repro.routing import (
    ClassifiedNegativeFirst,
    FirstHopWraparound,
    NegativeFirst,
    WestFirst,
    XY,
)
from repro.traffic import HotspotPattern, UniformPattern


def mesh_hotspot() -> None:
    # The fraction is chosen so the hotspot's inbound traffic stays under
    # its single ejection channel's 20 flits/us: adaptivity can steer
    # packets around the congested region, but nothing can help an
    # ejection-bound hotspot (try fraction=0.15 to see all algorithms
    # collapse alike).
    print("== 16x16 mesh, uniform + 6% hotspot at the centre ==")
    mesh = Mesh2D(16, 16)
    hotspot = mesh.node_xy(8, 8)
    config = SimulationConfig(
        offered_load=0.9, warmup_cycles=2_000, measure_cycles=8_000, seed=21
    )
    for algorithm in (XY(mesh), WestFirst(mesh), NegativeFirst(mesh)):
        pattern = HotspotPattern(mesh, hotspot, fraction=0.06)
        result = WormholeSimulator(algorithm, pattern, config).run()
        print(f"   {result.summary()}")
    print()


def torus_uniform() -> None:
    print("== 8-ary 2-cube (torus), uniform traffic, Section 4.2 routing ==")
    torus = KAryNCube(8, 2)
    config = SimulationConfig(
        offered_load=1.0, warmup_cycles=2_000, measure_cycles=8_000, seed=22
    )
    for algorithm in (
        FirstHopWraparound(torus),
        ClassifiedNegativeFirst(torus),
    ):
        result = WormholeSimulator(
            algorithm, UniformPattern(torus), config
        ).run()
        print(f"   {result.summary()}  avg hops={result.avg_hops:.2f}")
    print()


def main() -> None:
    mesh_hotspot()
    torus_uniform()


if __name__ == "__main__":
    main()
