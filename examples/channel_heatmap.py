#!/usr/bin/env python3
"""Where the traffic actually goes: channel-utilization heatmaps.

Runs xy and west-first under matrix-transpose traffic on a 16x16 mesh
with per-channel flit counting, then renders the northward-channel
utilization grids.  Under xy, every transpose packet turns on the
diagonal, so the columns adjacent to it glow; west-first's adaptive
south-east quadrant spreads the same traffic across the staircase.

Run:  python examples/channel_heatmap.py
"""

from repro import Mesh2D, SimulationConfig, WormholeSimulator
from repro.routing import WestFirst, XY
from repro.topology import NORTH, SOUTH
from repro.traffic import MeshTransposePattern
from repro.viz import hottest_channels, render_channel_utilization


def main() -> None:
    mesh = Mesh2D(16, 16)
    config = SimulationConfig(
        offered_load=1.5,
        warmup_cycles=2_000,
        measure_cycles=6_000,
        seed=23,
        track_channel_load=True,
    )
    for algorithm in (XY(mesh), WestFirst(mesh)):
        sim = WormholeSimulator(
            algorithm, MeshTransposePattern(mesh), config
        )
        result = sim.run()
        print(f"== {algorithm.name}: transpose at load 1.5 ==")
        print(f"   {result.summary()}")
        for direction in (NORTH, SOUTH):
            print(
                render_channel_utilization(
                    mesh,
                    sim.channels,
                    result.channel_flits,
                    config.measure_cycles,
                    direction,
                )
            )
        print("   hottest channels:")
        for channel, flits in hottest_channels(
            sim.channels, result.channel_flits, top=5
        ):
            print(
                f"     {mesh.coords(channel.src)} -> "
                f"{mesh.coords(channel.dst)}: "
                f"{100.0 * flits / config.measure_cycles:.0f}% busy"
            )
        print()


if __name__ == "__main__":
    main()
