#!/usr/bin/env python3
"""Quickstart: build a network, pick a turn-model routing algorithm,
verify it is deadlock free, and measure it under load.

Run:  python examples/quickstart.py
"""

from repro import (
    Mesh2D,
    SimulationConfig,
    UniformPattern,
    WestFirst,
    WormholeSimulator,
    verify_algorithm,
)


def main() -> None:
    # The paper's mesh testbed: 256 nodes, 16 x 16.
    mesh = Mesh2D(16, 16)

    # West-first partially adaptive routing (Section 3.1): packets route
    # west first, then adaptively south/east/north.
    algorithm = WestFirst(mesh)

    # Machine-check Theorem 2: the channel dependency graph is acyclic.
    verdict = verify_algorithm(algorithm)
    print(
        f"{algorithm.name} on {mesh}: deadlock-free = {verdict.deadlock_free} "
        f"({verdict.num_channels} channels, "
        f"{verdict.num_dependencies} dependencies)"
    )

    # Simulate the paper's setup: 20 flits/us channels, single-flit
    # buffers, 10-or-200-flit messages, FCFS input selection, xy output
    # selection, minimal routing.
    config = SimulationConfig(
        offered_load=1.0,  # flits per microsecond per node
        warmup_cycles=2_000,
        measure_cycles=8_000,
        seed=42,
    )
    sim = WormholeSimulator(algorithm, UniformPattern(mesh), config)
    result = sim.run()

    print(f"offered load        : {result.offered_flits_per_us:8.1f} flits/us")
    print(f"delivered throughput: {result.throughput_flits_per_us:8.1f} flits/us")
    print(f"average latency     : {result.avg_latency_us:8.2f} us")
    print(f"average path length : {result.avg_hops:8.2f} hops")
    print(f"sustainable         : {result.sustainable}")


if __name__ == "__main__":
    main()
