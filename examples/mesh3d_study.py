#!/usr/bin/env python3
"""Extension study: the n-dimensional algorithms on a 3D mesh.

The paper derives ABONF, ABOPL, and negative-first for n-dimensional
meshes (Section 4.1) and cites a detailed 3D study in its companion
paper [19].  This example runs the four-algorithm comparison on a
4x4x4 mesh (the J-machine/MOSAIC shape) under uniform and
coordinate-complement traffic.

Run:  python examples/mesh3d_study.py
"""

from repro import SimulationConfig, WormholeSimulator
from repro.routing import (
    AllButOneNegativeFirst,
    AllButOnePositiveLast,
    DimensionOrder,
    NegativeFirst,
)
from repro.topology import Mesh
from repro.traffic import MeshComplementPattern, UniformPattern
from repro.verification import verify_algorithm


def lineup(mesh):
    return (
        DimensionOrder(mesh),
        AllButOneNegativeFirst(mesh),
        AllButOnePositiveLast(mesh),
        NegativeFirst(mesh),
    )


def main() -> None:
    mesh = Mesh((4, 4, 4))
    print(f"topology: {mesh} ({mesh.num_nodes} nodes, "
          f"{mesh.num_channels()} channels)")
    for algorithm in lineup(mesh):
        verdict = verify_algorithm(algorithm)
        print(f"   {algorithm.name:16s} deadlock free: {verdict.deadlock_free}")
    print()

    for pattern_cls, load in ((UniformPattern, 2.0), (MeshComplementPattern, 1.0)):
        pattern = pattern_cls(mesh)
        print(f"== {pattern.name} traffic, load {load} flits/us/node ==")
        config = SimulationConfig(
            offered_load=load, warmup_cycles=2_000, measure_cycles=8_000,
            seed=19,
        )
        for algorithm in lineup(mesh):
            result = WormholeSimulator(algorithm, pattern, config).run()
            print(f"   {result.summary()}")
        print()


if __name__ == "__main__":
    main()
