#!/usr/bin/env python3
"""Reproduce the Section 5 table: p-cube routing choices on a binary
10-cube from 1011010100 to 0010111001.

At each node the table lists how many minimal p-cube moves are available,
how many extra moves the nonminimal extension would add (in parentheses
in the paper), and which dimension the example path takes.

Run:  python examples/pcube_walkthrough.py
"""

import math

from repro import Hypercube, pcube_choice_table, s_fully_adaptive, s_pcube
from repro.core import pcube_ratio


def main() -> None:
    cube = Hypercube(10)
    src = cube.node_from_address_str("1011010100")
    dst = cube.node_from_address_str("0010111001")

    h = cube.hamming(src, dst)
    h1 = bin(src & ~dst).count("1")
    h0 = bin(~src & dst & 0b1111111111).count("1")
    print(f"source      : {cube.address_str(src)}")
    print(f"destination : {cube.address_str(dst)}")
    print(f"h = {h}, h1 = {h1}, h0 = {h0}")
    print(f"S_p-cube = h1! * h0! = {s_pcube(cube, src, dst)} shortest paths")
    print(f"S_f      = h!        = {s_fully_adaptive(cube, src, dst)}")
    print(f"S_p-cube / S_f = {pcube_ratio(cube, src, dst)} "
          f"(= 1 / C({h},{h1}) = 1/{math.comb(h, h1)})")
    print()

    rows = pcube_choice_table(cube, src, dst, [2, 9, 6, 5, 0, 3])
    print(f"{'address':>12s} {'choices':>8s} {'dim taken':>10s}   comment")
    for row in rows:
        extra = f"(+{row.nonminimal_extra})" if row.nonminimal_extra else "    "
        dim = "" if row.dimension_taken is None else str(row.dimension_taken)
        print(
            f"{row.address:>12s} {row.minimal_choices:>4d}{extra:<4s} "
            f"{dim:>10s}   {row.phase}"
        )


if __name__ == "__main__":
    main()
