#!/usr/bin/env python3
"""Batched sweeps on the numpy array backend.

The array backend (``SimulationConfig(backend="array")``, optional
``repro[array]`` extra) packs worm state into struct-of-arrays and
advances every in-flight worm per cycle with boolean-mask kernels;
``BatchSimulator`` stacks many independent operating points into one
shared arena so a whole seed or load sweep is a handful of numpy
passes.  Every result is bit-identical to the event engine — this
example proves it on its own output.

Run:  python examples/batched_sweep.py
"""

from dataclasses import replace

from repro import (
    BatchSimulator,
    Mesh2D,
    SimulationConfig,
    UniformPattern,
    WestFirst,
    WormholeSimulator,
    numpy_available,
)

LOADS = (0.5, 1.0, 1.5, 2.0)
SEEDS = (3, 5, 7)


def main() -> None:
    if not numpy_available():
        print(
            "numpy is not installed — the array backend needs the "
            'repro[array] extra (pip install -e ".[array]").'
        )
        return

    mesh = Mesh2D(16, 16)
    base = SimulationConfig(
        warmup_cycles=500,
        measure_cycles=2_000,
        backend="array",
    )

    # A load x seed grid as ONE batched engine pass: 12 operating
    # points, one arena.  (repro sweep --backend array and the figure
    # harnesses batch exactly like this via ParallelSweepRunner.)
    points = [
        (WestFirst(mesh), UniformPattern(mesh),
         replace(base, offered_load=load, seed=seed))
        for load in LOADS
        for seed in SEEDS
    ]
    results = BatchSimulator(points).run()

    print(f"{len(points)} operating points in one batched pass:\n")
    print("load   seed   avg latency (us)   throughput (flits/us)")
    for (_, _, config), result in zip(points, results):
        print(
            f"{config.offered_load:4.1f}   {config.seed:4d}"
            f"   {result.avg_latency_us:16.2f}"
            f"   {result.throughput_flits_per_us:21.2f}"
        )

    # Bit-identical to the event engine: re-run one point solo and
    # compare the complete result dictionaries.
    algorithm, pattern, config = points[0]
    solo = WormholeSimulator(
        algorithm, pattern, replace(config, backend="event")
    ).run()
    match = solo.to_dict() == results[0].to_dict()
    print(f"\nevent-engine re-run of point 0 matches bit-for-bit: {match}")


if __name__ == "__main__":
    main()
