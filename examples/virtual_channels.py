#!/usr/bin/env python3
"""Extra channels: what the turn model deliberately does without.

The paper's closing sections point to networks *with* extra virtual or
physical channels ([18]).  This example shows both classic VC results on
top of our simulator:

1. **Minimal torus routing needs extra channels.** Section 4.2: ring
   cycles involve no turns, so no turn prohibition can make minimal
   k-ary n-cube routing deadlock free for k > 4.  The CDG check confirms
   it — and two *dateline* virtual channels fix it.
2. **Full adaptivity with an escape channel.** With two VCs on a mesh, a
   packet may take any shortest path on the adaptive channel and always
   fall back to an xy escape channel.  The plain CDG has cycles, but the
   Duato-style escape check proves deadlock freedom, and the simulator
   confirms it under overload.

Run:  python examples/virtual_channels.py
"""

from repro import KAryNCube, Mesh2D, SimulationConfig, WormholeSimulator
from repro.routing import (
    DatelineDimensionOrder,
    DimensionOrder,
    EscapeVCAdaptive,
)
from repro.traffic import MeshTransposePattern, UniformPattern
from repro.verification import (
    verify_algorithm,
    verify_escape_discipline,
    verify_vc_algorithm,
)


def torus_story() -> None:
    torus = KAryNCube(8, 2)
    print("== 1. Minimal torus routing (8-ary 2-cube) ==")
    naive = DimensionOrder(torus)
    print(
        f"   dimension-order on torus offsets, no VCs: deadlock free = "
        f"{verify_algorithm(naive).deadlock_free}  (ring cycles!)"
    )
    dateline = DatelineDimensionOrder(torus)
    verdict = verify_vc_algorithm(dateline, 2)
    print(
        f"   dateline dimension-order, 2 VCs:          deadlock free = "
        f"{verdict.deadlock_free}"
    )
    config = SimulationConfig(
        offered_load=1.0,
        warmup_cycles=1_500,
        measure_cycles=6_000,
        virtual_channels=2,
        seed=71,
    )
    result = WormholeSimulator(dateline, UniformPattern(torus), config).run()
    print(
        f"   simulated: {result.avg_hops:.2f} mean hops (minimal!), "
        f"{result.avg_latency_us:.2f}us latency, no deadlock: "
        f"{not result.deadlock}"
    )
    print()


def escape_story() -> None:
    mesh = Mesh2D(16, 16)
    print("== 2. Fully adaptive mesh routing with an escape VC ==")
    adaptive = EscapeVCAdaptive(mesh)
    cdg = verify_vc_algorithm(adaptive, 2)
    duato = verify_escape_discipline(adaptive, 2)
    print(f"   plain VC-CDG acyclic: {cdg.deadlock_free} "
          f"(adaptive channels form cycles - expected)")
    print(f"   escape-discipline check: {duato.deadlock_free} "
          f"(escape subnetwork acyclic + always requestable)")
    config = SimulationConfig(
        offered_load=1.75,
        warmup_cycles=1_500,
        measure_cycles=6_000,
        virtual_channels=2,
        seed=72,
    )
    result = WormholeSimulator(
        adaptive, MeshTransposePattern(mesh), config
    ).run()
    print(f"   transpose at load 1.75: {result.summary()}")


def main() -> None:
    torus_story()
    escape_story()


if __name__ == "__main__":
    main()
