#!/usr/bin/env python3
"""Design your own routing algorithm with the turn model.

Walks the six steps of Section 2 for a custom prohibition set —
"south-last" (the 90-degree rotation of north-last): prohibit both turns
out of south.  The turn model machinery checks each step, the CDG
verifier certifies deadlock freedom, and the maximal turn-restricted
routing function drops straight into the simulator.

Run:  python examples/custom_turn_model.py
"""

from repro import Mesh2D, SimulationConfig, UniformPattern, WormholeSimulator
from repro.core import Turn, TurnModel, abstract_cycles, count_shortest_paths
from repro.routing import TurnRestrictedMinimal
from repro.topology import EAST, SOUTH, WEST
from repro.verification import check_connectivity, verify_turn_set


def main() -> None:
    mesh = Mesh2D(16, 16)

    # Steps 1-3: directions, turns, and abstract cycles are intrinsic to
    # the 2D mesh.
    cycles = abstract_cycles(2)
    print(f"Step 1-3: 2 directions/dim, 8 turns, {len(cycles)} abstract cycles")

    # Step 4: prohibit one turn per cycle.  South-last: both turns out of
    # south (south->west from the CCW cycle, south->east from the CW one).
    model = TurnModel.from_prohibited(
        "south-last", 2, {Turn(SOUTH, WEST), Turn(SOUTH, EAST)}
    )
    print(f"Step 4: prohibit {sorted(map(repr, model.prohibited))}")
    print(f"        breaks every abstract cycle: {model.breaks_all_cycles()}")
    print(f"        minimal prohibition (max adaptive): "
          f"{model.is_minimal_prohibition()}")

    # Steps 5-6 do not apply (no wraparound channels; we keep reversals
    # prohibited).  Now certify the result on the concrete network.
    verdict = verify_turn_set(mesh, model)
    print(f"CDG check: deadlock free = {verdict.deadlock_free} "
          f"({verdict.num_dependencies} dependencies examined)")

    # The maximal minimal-adaptive routing function for the model.
    algorithm = TurnRestrictedMinimal(mesh, model)
    report = check_connectivity(algorithm)
    print(f"connectivity: {report.delivered_pairs}/{report.total_pairs} pairs, "
          f"minimal everywhere: {report.minimal_everywhere}")

    # Degree of adaptiveness for one pair.
    src, dst = mesh.node_xy(2, 6), mesh.node_xy(9, 1)
    paths = count_shortest_paths(
        lambda a, b: algorithm.candidates(a, b), mesh, src, dst
    )
    print(f"shortest paths offered from (2,6) to (9,1): {paths}")

    # And it simulates like any built-in algorithm.
    config = SimulationConfig(
        offered_load=1.0, warmup_cycles=1_000, measure_cycles=4_000, seed=7
    )
    result = WormholeSimulator(algorithm, UniformPattern(mesh), config).run()
    print(f"simulated: {result.summary()}")


if __name__ == "__main__":
    main()
