#!/usr/bin/env python3
"""Regenerate the paper's evaluation figures (13-16) as text series.

Each figure is a latency-vs-throughput comparison of four routing
algorithms on a 256-node network.  Absolute numbers belong to this
simulator; the shapes (who wins, by what factor) are the reproduction
target — see EXPERIMENTS.md.

Run:  python examples/paper_figures.py [fig13|fig14|fig15|fig16|all] [--full]

``--full`` uses longer measurement windows and a denser load grid
(minutes per figure instead of tens of seconds).
"""

import sys
import time

from repro.analysis import FAST, FIGURE_HARNESSES, FULL, format_figure

TITLES = {
    "fig13": "Figure 13: uniform traffic, 16x16 mesh",
    "fig14": "Figure 14: matrix-transpose traffic, 16x16 mesh",
    "fig15": "Figure 15: matrix-transpose traffic, binary 8-cube",
    "fig16": "Figure 16: reverse-flip traffic, binary 8-cube",
}


def main(argv) -> None:
    which = [a for a in argv if not a.startswith("--")] or ["all"]
    preset = FULL if "--full" in argv else FAST
    names = list(TITLES) if "all" in which else which
    for name in names:
        if name not in FIGURE_HARNESSES:
            raise SystemExit(
                f"unknown figure {name!r}; choose from {sorted(TITLES)}"
            )
        harness = FIGURE_HARNESSES[name]
        start = time.time()
        series = harness(
            preset,
            progress=lambda r: print("   ...", r.summary(), flush=True),
        )
        print()
        print(format_figure(TITLES[name], series))
        print(f"\n[{name} regenerated in {time.time() - start:.0f}s]\n")


if __name__ == "__main__":
    main(sys.argv[1:])
