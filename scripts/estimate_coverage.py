#!/usr/bin/env python
"""Estimate line coverage of ``src/repro`` without third-party tools.

CI measures coverage properly with ``pytest-cov`` (see the ``coverage``
job in ``.github/workflows/ci.yml``); this script exists for offline
environments where ``coverage.py`` is unavailable.  It installs a
``sys.settrace`` hook that records executed lines of files under
``src/repro`` only (foreign frames are skipped at call time, keeping the
overhead tolerable), runs the fast test suite in-process, and compares
against the set of executable lines recovered from compiled code
objects — the same denominator ``coverage.py`` uses, minus its arc
analysis, so expect agreement within a few percent.

Usage::

    python scripts/estimate_coverage.py [pytest args...]

Defaults to ``-q -m "not slow"``.  Prints per-module and total
percentages; exit status is always 0 (it is an estimator, not a gate).
"""

from __future__ import annotations

import os
import sys
from typing import Dict, Set

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC = os.path.join(REPO, "src")
PREFIX = os.path.join(SRC, "repro") + os.sep

covered: Dict[str, Set[int]] = {}


def _local_trace(frame, event, arg):
    if event == "line":
        covered[frame.f_code.co_filename].add(frame.f_lineno)
    return _local_trace


def _global_trace(frame, event, arg):
    filename = frame.f_code.co_filename
    if not filename.startswith(PREFIX):
        return None
    lines = covered.get(filename)
    if lines is None:
        lines = covered[filename] = set()
    lines.add(frame.f_lineno)
    return _local_trace


def executable_lines(path: str) -> Set[int]:
    """Line numbers with bytecode, gathered from nested code objects."""
    with open(path, "rb") as fh:
        source = fh.read()
    code = compile(source, path, "exec")
    lines: Set[int] = set()
    stack = [code]
    while stack:
        obj = stack.pop()
        for _, _, line in obj.co_lines():
            if line is not None:
                lines.add(line)
        for const in obj.co_consts:
            if hasattr(const, "co_lines"):
                stack.append(const)
    return lines


def main() -> int:
    sys.path.insert(0, SRC)
    import pytest

    args = sys.argv[1:] or ["-q", "-m", "not slow"]
    sys.settrace(_global_trace)
    try:
        pytest.main(args)
    finally:
        sys.settrace(None)

    total_executable = 0
    total_covered = 0
    rows = []
    for dirpath, _, filenames in os.walk(PREFIX):
        for name in sorted(filenames):
            if not name.endswith(".py"):
                continue
            path = os.path.join(dirpath, name)
            lines = executable_lines(path)
            hit = covered.get(path, set()) & lines
            total_executable += len(lines)
            total_covered += len(hit)
            percent = 100.0 * len(hit) / len(lines) if lines else 100.0
            rows.append((percent, os.path.relpath(path, REPO), len(hit), len(lines)))

    print()
    for percent, rel, hit, total in sorted(rows):
        print(f"{percent:6.1f}%  {hit:5d}/{total:<5d}  {rel}")
    overall = 100.0 * total_covered / total_executable if total_executable else 0.0
    print(f"\nTOTAL {overall:.1f}% ({total_covered}/{total_executable} lines)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
