#!/usr/bin/env python3
"""Regenerate the committed selection-policy comparison artifact.

The measurement core lives in ``repro.analysis.selection`` (also
exposed as ``repro selection``); this script is the reproducibility
entry point for the committed sweep behind docs/SELECTION.md:

    # the committed grid (16x16 mesh, WF + NF, uniform + transpose,
    # all four policies, fault-free and 4 dead links)
    python scripts/compare_selection.py --out docs/data/selection_compare.json

Every knob that shapes the grid is a flag, so narrower (or wider)
sweeps are one command away.  The JSON payload is
``SelectionComparison.to_dict()`` — per-cell load sweeps plus deltas
against the xy baseline.
"""

import argparse
import json
import os
import sys

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
)

from repro.analysis.selection import (  # noqa: E402
    DEFAULT_COMPARE_ALGORITHMS,
    DEFAULT_COMPARE_LOADS,
    DEFAULT_COMPARE_PATTERNS,
    DEFAULT_POLICIES,
    comparison_config,
    run_selection_comparison,
)


def _csv(text):
    return [part.strip() for part in text.split(",") if part.strip()]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--topology", default="mesh:16x16")
    parser.add_argument(
        "--algorithms", default=",".join(DEFAULT_COMPARE_ALGORITHMS)
    )
    parser.add_argument(
        "--patterns", default=",".join(DEFAULT_COMPARE_PATTERNS)
    )
    parser.add_argument("--policies", default=",".join(DEFAULT_POLICIES))
    parser.add_argument(
        "--loads", default=",".join(str(ld) for ld in DEFAULT_COMPARE_LOADS)
    )
    parser.add_argument("--warmup", type=int, default=800)
    parser.add_argument("--cycles", type=int, default=3_000)
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--fault-links", type=int, default=4)
    parser.add_argument("--fault-seed", type=int, default=0)
    parser.add_argument("--selection-threshold", type=int, default=2)
    parser.add_argument(
        "--out", default=None,
        help="write SelectionComparison.to_dict() as JSON here "
        "(default: stdout)",
    )
    args = parser.parse_args(argv)

    comparison = run_selection_comparison(
        topology=args.topology,
        algorithms=_csv(args.algorithms),
        patterns=_csv(args.patterns),
        policies=_csv(args.policies),
        loads=[float(part) for part in _csv(args.loads)],
        base_config=comparison_config(
            warmup_cycles=args.warmup,
            measure_cycles=args.cycles,
            seed=args.seed,
        ),
        fault_links=args.fault_links,
        fault_seed=args.fault_seed,
        selection_threshold=args.selection_threshold,
        progress=lambda r: print("  ...", r.summary(), flush=True),
    )
    for row in comparison.rows():
        print(row)
    if args.out:
        payload = json.dumps(comparison.to_dict(), indent=2, sort_keys=True)
        with open(args.out, "w") as handle:
            handle.write(payload + "\n")
        print(f"report written to {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
