#!/usr/bin/env python3
"""Benchmark the wormhole engine on the canonical operating points.

The measurement core lives in ``repro.analysis.bench`` (also exposed as
``repro bench``); this script is the CI/automation entry point:

    # full trajectory, written to BENCH_engine.json
    python scripts/bench_engine.py --out BENCH_engine.json --repeats 3

    # fold a pre-change report in as the per-point baseline
    python scripts/bench_engine.py --baseline bench_before.json \
        --out BENCH_engine.json

    # CI regression gate: quick subset, both backends, one artifact
    python scripts/bench_engine.py --quick --backend both \
        --out BENCH_quick.json --check-against BENCH_engine.json

    # append the array trajectory to the committed event-engine report
    python scripts/bench_engine.py --backend array \
        --merge-into BENCH_engine.json

``--backend array`` runs the same operating points on the numpy array
engine (point ids gain an ``@array`` suffix) plus the batched-sweep
points-per-second points; ``both`` runs everything.  ``--check-against``
fails (exit 1) when a point's fingerprint changed — the engine no
longer computes the same simulation — or when cycles/s (points/s for
batch points) fell more than ``--fail-threshold`` (default 30%) below
the committed number.  See docs/PERFORMANCE.md.
"""

import argparse
import json
import os
import sys

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
)

from repro.analysis.bench import (  # noqa: E402
    batch_bench_points,
    bench_points,
    compare_reports,
    load_report,
    run_bench,
    write_report,
)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="run only the quick CI subset of points",
    )
    parser.add_argument(
        "--backend", choices=("event", "array", "both"), default="event",
        help="engine backend(s) to benchmark; array/both also run the "
        "batched-sweep points (default event)",
    )
    parser.add_argument(
        "--no-batch", action="store_true",
        help="skip the batched-sweep points-per-second points",
    )
    parser.add_argument(
        "--batch-only", action="store_true",
        help="run only the batched-sweep points (implies an array-"
        "capable install)",
    )
    parser.add_argument(
        "--merge-into", default=None,
        help="merge this run's points into an existing report file "
        "(preserving points this run did not re-measure)",
    )
    parser.add_argument(
        "--repeats", type=int, default=2,
        help="timed repeats per point; the best wall time is kept (default 2)",
    )
    parser.add_argument(
        "--out", default=None, help="write the JSON report here",
    )
    parser.add_argument(
        "--label", default="", help="free-text label stored in the report",
    )
    parser.add_argument(
        "--baseline", default=None,
        help="prior report whose numbers are folded in as per-point baselines",
    )
    parser.add_argument(
        "--check-against", default=None,
        help="committed report to gate against (fingerprints + cycles/s)",
    )
    parser.add_argument(
        "--fail-threshold", type=float, default=0.30,
        help="max allowed cycles/s regression vs --check-against (default 0.30)",
    )
    args = parser.parse_args(argv)

    baseline = load_report(args.baseline) if args.baseline else None
    points = []
    if not args.batch_only:
        if args.backend in ("event", "both"):
            points.extend(bench_points(quick=args.quick))
        if args.backend in ("array", "both"):
            points.extend(bench_points(quick=args.quick, backend="array"))
    batch_points = []
    if (args.backend != "event" or args.batch_only) and not args.no_batch:
        batch_points = batch_bench_points(quick=args.quick)
    print(
        f"benchmarking {len(points)} point(s) + {len(batch_points)} "
        f"batch point(s), best of {args.repeats} repeat(s) each ...",
        flush=True,
    )
    report = run_bench(
        points,
        repeats=args.repeats,
        baseline=baseline,
        label=args.label,
        progress=lambda m: print(
            f"  {m.point.id:30s} {m.cycles_per_s:12.0f} cycles/s "
            f"({m.wall_s:.3f}s)",
            flush=True,
        ),
        batch_points=batch_points,
        batch_progress=lambda m: print(
            f"  {m.point.id:30s} {m.points_per_s:12.2f} pts/s "
            f"({m.speedup:.2f}x event)",
            flush=True,
        ),
    )
    print()
    print(report.render())
    if args.out:
        write_report(report, args.out)
        print(f"report written to {args.out}")
    if args.merge_into:
        merged = load_report(args.merge_into)
        fresh = report.to_dict()
        merged["points"].update(fresh["points"])
        if fresh.get("batch_points"):
            merged.setdefault("batch_points", {}).update(
                fresh["batch_points"]
            )
        for key in ("schema", "generated_at", "python", "platform"):
            merged[key] = fresh[key]
        if args.label:
            merged["label"] = args.label
        with open(args.merge_into, "w", encoding="utf-8") as fh:
            json.dump(merged, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"merged into {args.merge_into}")
    if args.check_against:
        committed = load_report(args.check_against)
        problems = compare_reports(
            report, committed, fail_threshold=args.fail_threshold
        )
        if problems:
            print()
            for problem in problems:
                print(f"REGRESSION: {problem}", file=sys.stderr)
            return 1
        print(f"no regressions vs {args.check_against}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
