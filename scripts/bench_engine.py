#!/usr/bin/env python3
"""Benchmark the wormhole engine on the canonical operating points.

The measurement core lives in ``repro.analysis.bench`` (also exposed as
``repro bench``); this script is the CI/automation entry point:

    # full trajectory, written to BENCH_engine.json
    python scripts/bench_engine.py --out BENCH_engine.json --repeats 3

    # fold a pre-change report in as the per-point baseline
    python scripts/bench_engine.py --baseline bench_before.json \
        --out BENCH_engine.json

    # CI regression gate: quick subset vs the committed trajectory
    python scripts/bench_engine.py --quick --out BENCH_quick.json \
        --check-against BENCH_engine.json

``--check-against`` fails (exit 1) when a point's fingerprint changed —
the engine no longer computes the same simulation — or when cycles/s
fell more than ``--fail-threshold`` (default 30%) below the committed
number.  See docs/PERFORMANCE.md.
"""

import argparse
import os
import sys

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
)

from repro.analysis.bench import (  # noqa: E402
    bench_points,
    compare_reports,
    load_report,
    run_bench,
    write_report,
)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="run only the quick CI subset of points",
    )
    parser.add_argument(
        "--repeats", type=int, default=2,
        help="timed repeats per point; the best wall time is kept (default 2)",
    )
    parser.add_argument(
        "--out", default=None, help="write the JSON report here",
    )
    parser.add_argument(
        "--label", default="", help="free-text label stored in the report",
    )
    parser.add_argument(
        "--baseline", default=None,
        help="prior report whose numbers are folded in as per-point baselines",
    )
    parser.add_argument(
        "--check-against", default=None,
        help="committed report to gate against (fingerprints + cycles/s)",
    )
    parser.add_argument(
        "--fail-threshold", type=float, default=0.30,
        help="max allowed cycles/s regression vs --check-against (default 0.30)",
    )
    args = parser.parse_args(argv)

    baseline = load_report(args.baseline) if args.baseline else None
    points = bench_points(quick=args.quick)
    print(
        f"benchmarking {len(points)} point(s), "
        f"best of {args.repeats} repeat(s) each ...",
        flush=True,
    )
    report = run_bench(
        points,
        repeats=args.repeats,
        baseline=baseline,
        label=args.label,
        progress=lambda m: print(
            f"  {m.point.id:26s} {m.cycles_per_s:12.0f} cycles/s "
            f"({m.wall_s:.3f}s)",
            flush=True,
        ),
    )
    print()
    print(report.render())
    if args.out:
        write_report(report, args.out)
        print(f"report written to {args.out}")
    if args.check_against:
        committed = load_report(args.check_against)
        problems = compare_reports(
            report, committed, fail_threshold=args.fail_threshold
        )
        if problems:
            print()
            for problem in problems:
                print(f"REGRESSION: {problem}", file=sys.stderr)
            return 1
        print(f"no regressions vs {args.check_against}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
