#!/usr/bin/env python3
"""Collect the full paper-vs-measured dataset behind EXPERIMENTS.md.

Runs every figure's sweep at a medium preset (denser than the benchmark
FAST preset), plus the cube-uniform reference sweep that Section 6's
cross-figure claims need, and prints one consolidated report.

Run:  python scripts/collect_experiments.py [outfile]
"""

import sys
import time

from repro.analysis import (
    ExperimentPreset,
    adaptive_vs_nonadaptive,
    compare_algorithms,
    figure13_mesh_uniform,
    figure14_mesh_transpose,
    figure15_cube_transpose,
    figure16_cube_reverse_flip,
    format_figure,
    paper_hop_counts,
)
from repro.routing import hypercube_algorithms
from repro.topology import Hypercube
from repro.traffic import UniformPattern

MEDIUM = ExperimentPreset(
    warmup_cycles=3_000,
    measure_cycles=9_000,
    mesh_loads=(0.5, 0.75, 1.0, 1.25, 1.5, 1.75, 2.0, 2.5),
    cube_loads=(0.5, 1.0, 1.5, 2.0, 2.5, 3.0, 4.0, 5.0, 6.0, 8.0),
    seed=7,
)


def cube_uniform(preset):
    cube = Hypercube(8)
    return compare_algorithms(
        hypercube_algorithms(cube),
        lambda topo: UniformPattern(topo),
        preset.cube_loads,
        preset.config(),
    )


def main() -> None:
    out_path = sys.argv[1] if len(sys.argv) > 1 else (
        "benchmarks/results/experiments_summary.txt"
    )
    sections = []
    t0 = time.time()

    hops = paper_hop_counts()
    sections.append(
        "== hop counts ==\n"
        + "\n".join(f"{k:20s} {float(v):.4f}" for k, v in hops.items())
    )

    harnesses = [
        ("fig13 mesh uniform", figure13_mesh_uniform),
        ("fig14 mesh transpose", figure14_mesh_transpose),
        ("fig15 cube transpose", figure15_cube_transpose),
        ("fig16 cube reverse-flip", figure16_cube_reverse_flip),
        ("ref: cube uniform", cube_uniform),
    ]
    for title, harness in harnesses:
        start = time.time()
        series = harness(MEDIUM)
        block = format_figure(title, series)
        try:
            ratio = adaptive_vs_nonadaptive(series)
            block += (
                f"\nbest adaptive ({ratio.best_adaptive}) / "
                f"{ratio.nonadaptive}: "
                f"{ratio.ratio and round(ratio.ratio, 2)}"
            )
        except ValueError:
            pass
        block += f"\n[{time.time() - start:.0f}s]"
        sections.append(block)
        print(block, flush=True)

    report = "\n\n".join(sections) + f"\n\ntotal {time.time() - t0:.0f}s\n"
    with open(out_path, "w") as fh:
        fh.write(report)
    print(f"\nwritten to {out_path}")


if __name__ == "__main__":
    main()
