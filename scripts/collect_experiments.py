#!/usr/bin/env python3
"""Collect the full paper-vs-measured dataset behind EXPERIMENTS.md.

Runs every figure's sweep at a medium preset (denser than the benchmark
FAST preset), plus the cube-uniform reference sweep that Section 6's
cross-figure claims need, and prints one consolidated report.

The sweeps route through the parallel experiment runner: ``--jobs N``
fans the operating points over N worker processes, and the on-disk
result cache makes re-collection after an interruption (or a doc-only
change) close to free.  See docs/PERFORMANCE.md.

Long collections survive worker trouble with the supervision knobs
(docs/RESILIENCE.md): ``--point-timeout``/``--max-point-retries`` bound
and retry misbehaving points, ``--keep-going`` finishes the collection
around permanent failures, and ``--journal``/``--resume`` checkpoint
completed points so a killed collection picks up where it left off.

Run:  python scripts/collect_experiments.py [outfile] [--jobs N]
          [--no-cache] [--cache-dir DIR] [--force]
          [--point-timeout S] [--max-point-retries N] [--keep-going]
          [--journal PATH] [--resume]
"""

import argparse
import sys
import time

from repro.analysis import (
    ExperimentPreset,
    ParallelSweepRunner,
    ResultCache,
    adaptive_vs_nonadaptive,
    compare_algorithms,
    figure13_mesh_uniform,
    figure14_mesh_transpose,
    figure15_cube_transpose,
    figure16_cube_reverse_flip,
    format_figure,
    paper_hop_counts,
)
from repro.routing import hypercube_algorithms
from repro.topology import Hypercube
from repro.traffic import UniformPattern

MEDIUM = ExperimentPreset(
    warmup_cycles=3_000,
    measure_cycles=9_000,
    mesh_loads=(0.5, 0.75, 1.0, 1.25, 1.5, 1.75, 2.0, 2.5),
    cube_loads=(0.5, 1.0, 1.5, 2.0, 2.5, 3.0, 4.0, 5.0, 6.0, 8.0),
    seed=7,
)


def cube_uniform(preset, progress=None, runner=None):
    cube = Hypercube(8)
    return compare_algorithms(
        hypercube_algorithms(cube),
        lambda topo: UniformPattern(topo),
        preset.cube_loads,
        preset.config(),
        progress,
        runner=runner,
    )


def parse_args():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "outfile",
        nargs="?",
        default="benchmarks/results/experiments_summary.txt",
    )
    parser.add_argument("--jobs", type=int, default=1)
    parser.add_argument("--no-cache", dest="cache", action="store_false")
    parser.add_argument("--cache-dir", default=None)
    parser.add_argument("--force", action="store_true")
    parser.add_argument(
        "--point-timeout",
        type=float,
        default=None,
        help="wall-clock budget per point before the worker is killed",
    )
    parser.add_argument(
        "--max-point-retries",
        type=int,
        default=0,
        help="re-dispatch attempts per crashed/hung/raising point",
    )
    parser.add_argument(
        "--keep-going",
        dest="keep_going",
        action="store_true",
        default=False,
        help="finish the collection around permanently failed points",
    )
    parser.add_argument(
        "--fail-fast",
        dest="keep_going",
        action="store_false",
        help="abort on the first permanent failure (default)",
    )
    parser.add_argument(
        "--journal",
        default=None,
        help="JSONL campaign journal checkpointing completed points",
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help="skip points already recorded in --journal",
    )
    return parser.parse_args()


def main() -> None:
    args = parse_args()
    out_path = args.outfile
    runner = ParallelSweepRunner(
        jobs=args.jobs,
        cache=ResultCache(args.cache_dir) if args.cache else None,
        force=args.force,
        point_timeout=args.point_timeout,
        max_point_retries=args.max_point_retries,
        keep_going=args.keep_going,
        journal=args.journal,
        resume=args.resume,
    )
    sections = []
    t0 = time.time()

    hops = paper_hop_counts()
    sections.append(
        "== hop counts ==\n"
        + "\n".join(f"{k:20s} {float(v):.4f}" for k, v in hops.items())
    )

    harnesses = [
        ("fig13 mesh uniform", figure13_mesh_uniform),
        ("fig14 mesh transpose", figure14_mesh_transpose),
        ("fig15 cube transpose", figure15_cube_transpose),
        ("fig16 cube reverse-flip", figure16_cube_reverse_flip),
        ("ref: cube uniform", cube_uniform),
    ]
    for title, harness in harnesses:
        start = time.time()
        series = harness(MEDIUM, runner=runner)
        block = format_figure(title, series)
        try:
            ratio = adaptive_vs_nonadaptive(series)
            block += (
                f"\nbest adaptive ({ratio.best_adaptive}) / "
                f"{ratio.nonadaptive}: "
                f"{ratio.ratio and round(ratio.ratio, 2)}"
            )
        except ValueError:
            pass
        block += f"\n[{time.time() - start:.0f}s]"
        sections.append(block)
        print(block, flush=True)

    report = (
        "\n\n".join(sections)
        + f"\n\ntotal {time.time() - t0:.0f}s [{runner.stats.summary()}]\n"
    )
    with open(out_path, "w") as fh:
        fh.write(report)
    print(f"\nwritten to {out_path}")
    if runner.failures:
        print(
            f"{len(runner.failures)} point(s) permanently failed:",
            file=sys.stderr,
        )
        for failure in runner.failures:
            print(f"  {failure.describe()}", file=sys.stderr)
        runner.close()
        sys.exit(3)
    runner.close()


if __name__ == "__main__":
    main()
