"""Extension: the Section 4.2 k-ary n-cube algorithms under load.

Not a paper figure (the paper derives the torus algorithms but only
simulates mesh and hypercube); this bench exercises first-hop-wraparound
and classified negative-first on an 8-ary 2-cube and records their
verified deadlock freedom plus measured performance."""

from repro.routing import torus_algorithms
from repro.simulation import SimulationConfig, WormholeSimulator
from repro.topology import KAryNCube
from repro.traffic import UniformPattern
from repro.verification import verify_algorithm


def run_torus():
    torus = KAryNCube(8, 2)
    rows = []
    for algorithm in torus_algorithms(torus):
        verdict = verify_algorithm(algorithm)
        config = SimulationConfig(
            offered_load=1.5,
            warmup_cycles=1_500,
            measure_cycles=5_000,
            seed=41,
        )
        result = WormholeSimulator(
            algorithm, UniformPattern(torus), config
        ).run()
        rows.append((algorithm.name, verdict.deadlock_free, result))
    return rows


def test_ext_torus_section42(benchmark, record):
    rows = benchmark.pedantic(run_torus, rounds=1, iterations=1)
    lines = [
        "== Extension: Section 4.2 torus algorithms (8-ary 2-cube, uniform) ==",
        "algorithm              CDG-free  latency(us)  thr(fl/us)  hops",
    ]
    for name, free, result in rows:
        lines.append(
            f"{name:22s} {str(free):8s} {result.avg_latency_us:11.2f} "
            f"{result.throughput_flits_per_us:11.1f} {result.avg_hops:5.2f}"
        )
        assert free, name
        assert not result.deadlock
        assert result.delivered_packets > 0
    text = "\n".join(lines)
    print("\n" + text)
    record("ext_torus", text)
    # Wraparound use keeps average paths below the mesh-only average
    # (uniform mean on an 8x8 mesh would be 16/3 * 2 / 2 = 5.33+ hops;
    # the torus offers shorter ways around).
    for name, _, result in rows:
        assert result.avg_hops < 6.0, name
