"""Figure 13: uniform traffic in a 16x16 mesh.

Paper shape: at low load the four algorithms perform alike; at high load
the nonadaptive xy algorithm has the lower latencies and the highest (or
tied-highest) sustainable throughput — nonadaptivity happens to preserve
uniform traffic's evenness.
"""

from repro.analysis import (
    figure13_mesh_uniform,
    format_figure,
)


def test_fig13_mesh_uniform(benchmark, preset, record, runner):
    series = benchmark.pedantic(
        figure13_mesh_uniform,
        args=(preset,),
        kwargs={"runner": runner},
        rounds=1,
        iterations=1,
    )
    text = format_figure("Figure 13: uniform traffic, 16x16 mesh", series)
    print("\n" + text)
    record("fig13_mesh_uniform", text)

    # Shape checks (loose: simulation noise must not flake the bench).
    by_name = {s.algorithm: s for s in series}
    assert set(by_name) == {"xy", "west-first", "north-last", "negative-first"}
    # Everyone delivers traffic at the lowest load.
    for s in series:
        assert s.results[0].delivered_packets > 0
    # Paper claim: under uniform traffic the adaptive algorithms do not
    # beat xy's sustainable throughput by any meaningful margin.
    xy_best = by_name["xy"].max_sustainable_throughput()
    for name in ("west-first", "north-last", "negative-first"):
        assert by_name[name].max_sustainable_throughput() <= xy_best * 1.25
