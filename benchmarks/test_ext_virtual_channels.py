"""Extension: what extra (virtual) channels buy — the [18] teaser.

Three comparisons at one transpose operating point on the 16x16 mesh:

* west-first with 1 VC (the paper's setting);
* west-first with 2 VCs (same algorithm, more channels);
* escape-VC fully adaptive with 2 VCs (any shortest path, xy escape).

Plus the torus result: minimal dimension-order routing with dateline
VCs, which Section 4.2 shows is impossible without extra channels."""

from repro.routing import (
    DatelineDimensionOrder,
    EscapeVCAdaptive,
    WestFirst,
)
from repro.simulation import SimulationConfig, WormholeSimulator
from repro.topology import KAryNCube, Mesh2D
from repro.traffic import MeshTransposePattern, UniformPattern


def run_mesh_comparison():
    mesh = Mesh2D(16, 16)
    cases = [
        ("west-first 1vc", WestFirst(mesh), 1),
        ("west-first 2vc", WestFirst(mesh), 2),
        ("escape-vc-adaptive 2vc", EscapeVCAdaptive(mesh), 2),
    ]
    rows = []
    for label, algorithm, vcs in cases:
        config = SimulationConfig(
            offered_load=1.75,
            warmup_cycles=1_500,
            measure_cycles=5_000,
            virtual_channels=vcs,
            seed=61,
        )
        result = WormholeSimulator(
            algorithm, MeshTransposePattern(mesh), config
        ).run()
        rows.append((label, result))
    return rows


def test_ext_virtual_channels_mesh(benchmark, record):
    rows = benchmark.pedantic(run_mesh_comparison, rounds=1, iterations=1)
    lines = [
        "== Extension: virtual channels (16x16 mesh, transpose, load 1.75) ==",
        "configuration            latency(us)  thr(fl/us)  sustainable",
    ]
    for label, result in rows:
        lines.append(
            f"{label:24s} {result.avg_latency_us:11.2f} "
            f"{result.throughput_flits_per_us:11.1f}  {result.sustainable}"
        )
        assert not result.deadlock, label
    text = "\n".join(lines)
    print("\n" + text)
    record("ext_virtual_channels", text)
    by_label = dict(rows)
    # A second VC never hurts west-first's throughput materially.
    assert (
        by_label["west-first 2vc"].throughput_flits_per_us
        >= by_label["west-first 1vc"].throughput_flits_per_us * 0.9
    )


def test_ext_dateline_minimal_torus(benchmark, record):
    torus = KAryNCube(8, 2)
    config = SimulationConfig(
        offered_load=1.0,
        warmup_cycles=1_500,
        measure_cycles=5_000,
        virtual_channels=2,
        seed=62,
    )

    def run():
        return WormholeSimulator(
            DatelineDimensionOrder(torus), UniformPattern(torus), config
        ).run()

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert not result.deadlock
    # Minimal torus hops on 8x8: 2 * (8*8/4 / ... ) -> per-dim mean 2.0,
    # total ~4.0; the mesh-restricted algorithms average ~5.1+.
    assert result.avg_hops < 4.4
    text = (
        "== Extension: dateline VCs enable minimal torus routing ==\n"
        f"8-ary 2-cube uniform: avg hops {result.avg_hops:.2f} (mesh-"
        f"restricted routing measures ~5.1), latency "
        f"{result.avg_latency_us:.2f}us, throughput "
        f"{result.throughput_flits_per_us:.1f} fl/us"
    )
    print("\n" + text)
    record("ext_dateline_torus", text)
