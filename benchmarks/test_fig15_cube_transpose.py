"""Figure 15: matrix-transpose traffic in a binary 8-cube.

Paper shape: the partially adaptive algorithms (ABONF, ABOPL, p-cube)
have lower latencies at high load and roughly twice e-cube's maximum
sustainable throughput.
"""

from repro.analysis import (
    adaptive_vs_nonadaptive,
    figure15_cube_transpose,
    format_figure,
)


def test_fig15_cube_transpose(benchmark, preset, record, runner):
    series = benchmark.pedantic(
        figure15_cube_transpose,
        args=(preset,),
        kwargs={"runner": runner},
        rounds=1,
        iterations=1,
    )
    ratio = adaptive_vs_nonadaptive(series)
    text = format_figure(
        "Figure 15: matrix-transpose traffic, binary 8-cube",
        series,
        note=(
            f"best adaptive ({ratio.best_adaptive}) vs e-cube sustainable "
            f"throughput ratio: {ratio.ratio and round(ratio.ratio, 2)} "
            f"(paper: ~2x)"
        ),
    )
    print("\n" + text)
    record("fig15_cube_transpose", text)

    by_name = {s.algorithm: s for s in series}
    assert set(by_name) == {"e-cube", "abonf", "abopl", "p-cube"}
    # The adaptive algorithms clearly out-sustain e-cube under transpose.
    assert ratio.ratio is not None and ratio.ratio >= 1.3
    # And their latency at the highest common load is lower.
    top = max(r.offered_load for r in by_name["e-cube"].results)

    def latency_at_top(name):
        return [r for r in by_name[name].results if r.offered_load == top][
            0
        ].avg_latency_us

    assert latency_at_top("abonf") < latency_at_top("e-cube")
    assert latency_at_top("p-cube") < latency_at_top("e-cube")
