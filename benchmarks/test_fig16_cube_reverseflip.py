"""Figure 16: reverse-flip traffic in a binary 8-cube.

Paper shape: the partially adaptive algorithms sustain about four times
e-cube's throughput — the largest gap in the paper — and their latency
stays nearly flat far past e-cube's saturation point.
"""

from repro.analysis import (
    adaptive_vs_nonadaptive,
    figure16_cube_reverse_flip,
    format_figure,
)


def test_fig16_cube_reverse_flip(benchmark, preset, record, runner):
    series = benchmark.pedantic(
        figure16_cube_reverse_flip,
        args=(preset,),
        kwargs={"runner": runner},
        rounds=1,
        iterations=1,
    )
    ratio = adaptive_vs_nonadaptive(series)
    text = format_figure(
        "Figure 16: reverse-flip traffic, binary 8-cube",
        series,
        note=(
            f"best adaptive ({ratio.best_adaptive}) vs e-cube sustainable "
            f"throughput ratio: {ratio.ratio and round(ratio.ratio, 2)} "
            f"(paper: ~4x)"
        ),
    )
    print("\n" + text)
    record("fig16_cube_reverseflip", text)

    by_name = {s.algorithm: s for s in series}
    # Reverse-flip is the adaptive algorithms' best case.
    assert ratio.ratio is not None and ratio.ratio >= 1.5
    # The adaptive latency curve stays flat where e-cube has saturated:
    # compare latency at the top load.
    top = max(r.offered_load for r in by_name["e-cube"].results)

    def result_at_top(name):
        return [r for r in by_name[name].results if r.offered_load == top][0]

    ecube_top = result_at_top("e-cube")
    for name in ("abonf", "abopl", "p-cube"):
        adaptive_top = result_at_top(name)
        assert adaptive_top.avg_latency_us < ecube_top.avg_latency_us, name
        assert (
            adaptive_top.throughput_flits_per_us
            > ecube_top.throughput_flits_per_us
        ), name
