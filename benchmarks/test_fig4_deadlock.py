"""Figures 1 and 4: the deadlock demonstrations.

Benchmarks the CDG verifier on the Figure 4 counterexample (cycle found)
and the live simulator run that deadlocks without turn restrictions,
against the control run (west-first, same load, no deadlock).
"""

from repro.core import Turn, TurnModel
from repro.routing import TurnRestrictedMinimal, WestFirst
from repro.simulation import SimulationConfig, WormholeSimulator, detect_deadlock
from repro.topology import EAST, Mesh2D, NORTH
from repro.traffic import UniformPattern
from repro.verification import verify_turn_set


def overload(seed=2):
    return SimulationConfig(
        offered_load=8.0,
        warmup_cycles=0,
        measure_cycles=40_000,
        deadlock_threshold=1_500,
        seed=seed,
    )


def test_fig4_static_cycle_witness(benchmark, record):
    mesh = Mesh2D(8, 8)
    bad = TurnModel.from_prohibited(
        "figure-4", 2, {Turn(EAST, NORTH), Turn(NORTH, EAST)}
    )
    verdict = benchmark(verify_turn_set, mesh, bad)
    assert bad.breaks_all_cycles()
    assert not verdict.deadlock_free
    lines = [
        "== Figure 4: one turn per abstract cycle is not sufficient ==",
        f"prohibited: {sorted(map(repr, bad.prohibited))}",
        f"abstract cycles broken: {bad.breaks_all_cycles()}",
        f"CDG acyclic: {verdict.deadlock_free}",
        f"witness cycle length: {len(verdict.cycle)} channels",
    ]
    text = "\n".join(lines)
    print("\n" + text)
    record("fig4_static_cycle", text)


def run_to_deadlock():
    mesh = Mesh2D(8, 8)
    anything_goes = TurnRestrictedMinimal(
        mesh, TurnModel.from_prohibited("none", 2, set())
    )
    sim = WormholeSimulator(anything_goes, UniformPattern(mesh), overload())
    result = sim.run()
    return sim, result


def test_fig1_live_deadlock(benchmark, record):
    sim, result = benchmark.pedantic(run_to_deadlock, rounds=1, iterations=1)
    assert result.deadlock
    report = detect_deadlock(sim)
    assert report.deadlocked
    lines = [
        "== Figure 1: live wormhole deadlock, no prohibited turns ==",
        f"watchdog fired at cycle {result.deadlock_cycle}",
        f"packets in flight: {result.inflight_at_end}",
        report.describe(),
    ]
    text = "\n".join(lines)
    print("\n" + text)
    record("fig1_live_deadlock", text)


def test_fig1_control_west_first_survives(benchmark, record):
    mesh = Mesh2D(8, 8)

    def run():
        sim = WormholeSimulator(
            WestFirst(mesh), UniformPattern(mesh), overload()
        )
        return sim.run()

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert not result.deadlock
    assert result.delivered_packets > 0
    text = (
        "== Control: west-first at the same overload ==\n"
        f"no deadlock; delivered {result.delivered_packets} packets at "
        f"{result.throughput_flits_per_us:.1f} flits/us"
    )
    print("\n" + text)
    record("fig1_control_west_first", text)
