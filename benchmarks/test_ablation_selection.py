"""Ablation: output and input selection policies (the paper uses xy
output selection and local-FCFS input selection; [19] studies the
alternatives).

Measured on the adaptive west-first algorithm under transpose, where the
output policy decides how aggressively worms spread off the preferred
dimension."""

from repro.routing import WestFirst
from repro.simulation import SimulationConfig, WormholeSimulator
from repro.topology import Mesh2D
from repro.traffic import MeshTransposePattern


POLICIES = [
    ("xy", "fcfs"),
    ("random", "fcfs"),
    ("zigzag", "fcfs"),
    ("xy", "random"),
]


def sweep_policies():
    mesh = Mesh2D(16, 16)
    rows = []
    for output, input_ in POLICIES:
        config = SimulationConfig(
            offered_load=1.5,
            warmup_cycles=1_500,
            measure_cycles=5_000,
            output_selection=output,
            input_selection=input_,
            seed=32,
        )
        result = WormholeSimulator(
            WestFirst(mesh), MeshTransposePattern(mesh), config
        ).run()
        rows.append((output, input_, result))
    return rows


def test_ablation_selection_policies(benchmark, record):
    rows = benchmark.pedantic(sweep_policies, rounds=1, iterations=1)
    lines = [
        "== Ablation: selection policies (west-first, transpose, load 1.5) ==",
        "output   input    latency(us)  throughput(fl/us)  sustainable",
    ]
    for output, input_, result in rows:
        lines.append(
            f"{output:8s} {input_:8s} {result.avg_latency_us:11.2f} "
            f"{result.throughput_flits_per_us:18.1f}  {result.sustainable}"
        )
    text = "\n".join(lines)
    print("\n" + text)
    record("ablation_selection", text)
    # Every policy must deliver traffic; FCFS guarantees fairness but the
    # alternatives still run.
    assert all(r.delivered_packets > 0 for _, _, r in rows)
