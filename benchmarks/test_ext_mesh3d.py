"""Extension: the Section 4.1 n-dimensional algorithms on a 3D mesh
(the direction of the paper's companion study [19]).

Compares dimension-order against ABONF / ABOPL / negative-first on a
4x4x4 mesh under coordinate-complement traffic (the mesh analogue of
bit-complement: everything crosses the centre)."""

from repro.routing import (
    AllButOneNegativeFirst,
    AllButOnePositiveLast,
    DimensionOrder,
    NegativeFirst,
)
from repro.simulation import SimulationConfig, WormholeSimulator
from repro.topology import Mesh
from repro.traffic import MeshComplementPattern


def run_mesh3d():
    mesh = Mesh((4, 4, 4))
    rows = []
    for factory in (
        DimensionOrder,
        AllButOneNegativeFirst,
        AllButOnePositiveLast,
        NegativeFirst,
    ):
        algorithm = factory(mesh)
        config = SimulationConfig(
            offered_load=1.0,
            warmup_cycles=1_500,
            measure_cycles=5_000,
            seed=42,
        )
        result = WormholeSimulator(
            algorithm, MeshComplementPattern(mesh), config
        ).run()
        rows.append((algorithm.name, result))
    return rows


def test_ext_mesh3d_complement(benchmark, record):
    rows = benchmark.pedantic(run_mesh3d, rounds=1, iterations=1)
    lines = [
        "== Extension: 3D mesh (4x4x4), coordinate-complement traffic ==",
        "algorithm          latency(us)  thr(fl/us)  sustainable",
    ]
    for name, result in rows:
        lines.append(
            f"{name:18s} {result.avg_latency_us:11.2f} "
            f"{result.throughput_flits_per_us:11.1f}  {result.sustainable}"
        )
        assert not result.deadlock, name
        assert result.delivered_packets > 0, name
    text = "\n".join(lines)
    print("\n" + text)
    record("ext_mesh3d", text)
