"""Section 6's path-length claims and the cross-figure throughput
comparisons that the prose highlights.

The path lengths are workload properties and reproduce the paper's
numbers exactly; the throughput comparisons come from reduced sweeps of
the same experiments as Figures 13-16.
"""

import pytest

from repro.analysis import paper_hop_counts
from repro.simulation import SimulationConfig, WormholeSimulator
from repro.routing import make_algorithm
from repro.topology import Hypercube, Mesh2D
from repro.traffic import (
    MeshTransposePattern,
    ReverseFlipPattern,
    UniformPattern,
)


def test_sec6_exact_path_lengths(benchmark, record):
    hops = benchmark(paper_hop_counts)
    lines = ["== Section 6: average minimal path lengths =="]
    expectations = {
        "mesh-uniform": (10.61, 0.08),  # paper 10.61; exact mean 10.667
        "mesh-transpose": (11.34, 0.01),
        "cube-uniform": (4.01, 0.01),
        "cube-reverse-flip": (4.27, 0.01),
    }
    for key, (paper_value, tol) in expectations.items():
        ours = float(hops[key])
        lines.append(f"{key:20s} ours={ours:7.4f}  paper={paper_value}")
        assert ours == pytest.approx(paper_value, abs=tol), key
    lines.append(f"{'cube-transpose':20s} ours={float(hops['cube-transpose']):7.4f}")
    text = "\n".join(lines)
    print("\n" + text)
    record("sec6_path_lengths", text)


def measured_hops():
    """The simulator's delivered-traffic hop averages must match the
    workloads' analytic means (minimal routing)."""
    config = SimulationConfig(
        offered_load=0.5, warmup_cycles=500, measure_cycles=10_000, seed=17
    )
    mesh = Mesh2D(16, 16)
    cube = Hypercube(8)
    cases = [
        (make_algorithm("xy", mesh), MeshTransposePattern(mesh), 11.34),
        (make_algorithm("e-cube", cube), ReverseFlipPattern(cube), 4.27),
        (make_algorithm("p-cube", cube), UniformPattern(cube), 4.01),
    ]
    out = []
    for algorithm, pattern, expected in cases:
        result = WormholeSimulator(algorithm, pattern, config).run()
        out.append((algorithm.name, pattern.name, result.avg_hops, expected))
    return out


def test_sec6_simulated_hops_match_analytic(benchmark, record):
    rows = benchmark.pedantic(measured_hops, rounds=1, iterations=1)
    lines = ["== Section 6: measured vs analytic hop counts =="]
    for alg, pattern, measured, expected in rows:
        lines.append(
            f"{alg:8s} {pattern:14s} measured={measured:6.3f} paper={expected}"
        )
        assert measured == pytest.approx(expected, rel=0.05)
    text = "\n".join(lines)
    print("\n" + text)
    record("sec6_measured_hops", text)
