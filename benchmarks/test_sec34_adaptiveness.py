"""Section 3.4: degree-of-adaptiveness formulas and the >1/2 average
ratio claim, evaluated exhaustively on the paper's 16x16 mesh."""

from fractions import Fraction

from repro.core import (
    average_adaptiveness_ratio,
    s_negative_first,
    s_north_last,
    s_west_first,
)
from repro.topology import Mesh2D


FORMULAS = [
    ("west-first", s_west_first),
    ("north-last", s_north_last),
    ("negative-first", s_negative_first),
]


def compute_ratios(mesh):
    return {
        name: average_adaptiveness_ratio(mesh, formula)
        for name, formula in FORMULAS
    }


def test_sec34_average_adaptiveness_on_16x16(benchmark, record):
    mesh = Mesh2D(16, 16)
    ratios = benchmark.pedantic(
        compute_ratios, args=(mesh,), rounds=1, iterations=1
    )
    lines = ["== Section 3.4: mean S_p/S_f over all pairs, 16x16 mesh =="]
    for name, ratio in ratios.items():
        lines.append(f"{name:16s} {float(ratio):.4f}  (paper claim: > 1/2)")
        assert ratio > Fraction(1, 2), name
        assert ratio <= 1
    text = "\n".join(lines)
    print("\n" + text)
    record("sec34_adaptiveness", text)


def test_sec34_single_path_fraction(benchmark, record):
    """'S_p = 1 for at least half of the source-destination pairs.'"""
    mesh = Mesh2D(16, 16)
    total = mesh.num_nodes * (mesh.num_nodes - 1)

    def count_single():
        return {
            name: sum(
                1
                for s in mesh.nodes()
                for d in mesh.nodes()
                if s != d and formula(mesh, s, d) == 1
            )
            for name, formula in FORMULAS
        }

    singles = benchmark.pedantic(count_single, rounds=1, iterations=1)
    lines = ["== Section 3.4: fraction of pairs with a single shortest path =="]
    for name, single in singles.items():
        lines.append(f"{name:16s} {single / total:.3f}")
        # "at least half" modulo the aligned pairs (same row/column),
        # where S_f = 1 anyway.
        assert single / total > 0.45, name
    text = "\n".join(lines)
    print("\n" + text)
    record("sec34_single_path_fraction", text)
