"""Fairness / indefinite postponement (Section 6's input-selection
rationale).

The paper chooses local first-come-first-served input selection because
it "is fair and therefore prevents indefinite postponement".  This bench
measures the longest any header waited for a grant under FCFS vs random
input selection at a contended operating point."""

from repro.routing import WestFirst
from repro.simulation import SimulationConfig, WormholeSimulator
from repro.topology import Mesh2D
from repro.traffic import MeshTransposePattern


def run_policies():
    mesh = Mesh2D(16, 16)
    rows = []
    for policy in ("fcfs", "random"):
        config = SimulationConfig(
            offered_load=1.6,
            warmup_cycles=1_500,
            measure_cycles=6_000,
            input_selection=policy,
            seed=51,
        )
        result = WormholeSimulator(
            WestFirst(mesh), MeshTransposePattern(mesh), config
        ).run()
        rows.append((policy, result))
    return rows


def test_fairness_input_selection(benchmark, record):
    rows = benchmark.pedantic(run_policies, rounds=1, iterations=1)
    lines = [
        "== Fairness: longest header wait for a grant (WF, transpose, 1.6) ==",
        "policy   max-wait(cycles)  latency(us)  throughput(fl/us)",
    ]
    for policy, result in rows:
        lines.append(
            f"{policy:8s} {result.max_grant_wait_cycles:16d} "
            f"{result.avg_latency_us:11.2f} "
            f"{result.throughput_flits_per_us:18.1f}"
        )
    text = "\n".join(lines)
    print("\n" + text)
    record("fairness_input_selection", text)
    by_policy = dict(rows)
    # FCFS bounds the wait at roughly a worm service time times the
    # contention depth; it must never be pathological.
    assert by_policy["fcfs"].max_grant_wait_cycles < 6_000
    assert all(r.delivered_packets > 0 for _, r in rows)
