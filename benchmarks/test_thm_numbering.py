"""Theorems 2, 3, 5: the channel numberings verified exhaustively over
every minimal path on a 5x5 mesh (and a 3x3x3 mesh for Theorem 5)."""

from repro.core import (
    monotonicity_violations,
    negative_first_numbering,
    north_last_numbering,
    west_first_numbering,
)
from repro.routing import (
    NegativeFirst,
    NorthLast,
    WestFirst,
    enumerate_minimal_paths,
    path_channels,
)
from repro.topology import Mesh, Mesh2D


def all_paths(algorithm, limit_per_pair=30):
    topo = algorithm.topology
    out = []
    for src in topo.nodes():
        for dst in topo.nodes():
            if src == dst:
                continue
            for p in enumerate_minimal_paths(algorithm, src, dst, limit_per_pair):
                out.append(path_channels(topo, p))
    return out


CASES = [
    ("thm2 west-first", WestFirst, west_first_numbering, True),
    ("thm3 north-last", NorthLast, north_last_numbering, True),
    ("thm5 negative-first", NegativeFirst, negative_first_numbering, False),
]


def check_all(mesh):
    report = {}
    for label, alg_cls, builder, decreasing in CASES:
        numbering = builder(mesh)
        paths = all_paths(alg_cls(mesh))
        violations = monotonicity_violations(numbering, paths, decreasing)
        report[label] = (len(paths), len(violations))
    return report


def test_thm_2_3_5_numberings_on_5x5(benchmark, record):
    mesh = Mesh2D(5, 5)
    report = benchmark.pedantic(check_all, args=(mesh,), rounds=1, iterations=1)
    lines = ["== Theorems 2/3/5: strict monotonicity along every minimal path =="]
    for label, (paths, violations) in report.items():
        lines.append(f"{label:22s} {paths:6d} paths, {violations} violations")
        assert violations == 0, label
    text = "\n".join(lines)
    print("\n" + text)
    record("thm_numbering", text)


def test_thm5_on_3d_mesh(benchmark, record):
    mesh = Mesh((3, 3, 3))
    numbering = negative_first_numbering(mesh)
    paths = benchmark.pedantic(
        all_paths, args=(NegativeFirst(mesh),),
        kwargs={"limit_per_pair": 10}, rounds=1, iterations=1,
    )
    violations = monotonicity_violations(numbering, paths, decreasing=False)
    assert violations == []
    record(
        "thm5_3d",
        f"Theorem 5 on 3x3x3 mesh: {len(paths)} paths, 0 violations",
    )
