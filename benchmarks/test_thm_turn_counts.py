"""Theorems 1 and 6: turn counts and the necessary-and-sufficient
quarter, checked constructively for n = 2..5 (plus the 12-of-16
enumeration for 2D)."""

from repro.core import (
    TurnModel,
    abstract_cycles,
    count_ninety_degree_turns,
    minimum_prohibited_turns,
    two_turn_prohibitions_2d,
)
from repro.topology import Mesh, Mesh2D
from repro.verification import turn_set_is_deadlock_free


def classify_two_turn_prohibitions():
    mesh = Mesh2D(4, 4)
    return [
        turn_set_is_deadlock_free(
            mesh, TurnModel.from_prohibited("pair", 2, pair)
        )
        for pair in two_turn_prohibitions_2d()
    ]


def test_thm1_counts_and_12_of_16(benchmark, record):
    verdicts = benchmark.pedantic(
        classify_two_turn_prohibitions, rounds=1, iterations=1
    )
    assert sum(verdicts) == 12 and len(verdicts) == 16
    lines = ["== Theorem 1 / Section 3 structure =="]
    for n in range(2, 6):
        turns = count_ninety_degree_turns(n)
        cycles = len(abstract_cycles(n))
        minimum = minimum_prohibited_turns(n)
        lines.append(
            f"n={n}: {turns} turns, {cycles} abstract cycles, "
            f"minimum prohibitions {minimum} (= turns/4: {turns // 4})"
        )
        assert minimum == turns // 4 == cycles
    lines.append(
        f"2D: {sum(verdicts)}/16 two-turn prohibitions are deadlock free "
        f"(paper: 12)"
    )
    text = "\n".join(lines)
    print("\n" + text)
    record("thm1_turn_counts", text)


def sufficiency_for_dimensions():
    results = {}
    for n, dims in ((2, (4, 4)), (3, (3, 3, 3)), (4, (2, 2, 2, 2))):
        mesh = Mesh(dims)
        results[n] = all(
            turn_set_is_deadlock_free(mesh, factory(n))
            for factory in (
                TurnModel.west_first,
                TurnModel.north_last,
                TurnModel.negative_first,
            )
        )
    return results


def test_thm6_sufficiency_of_the_quarter(benchmark, record):
    """Theorem 6: prohibiting some quarter of the turns suffices — the
    three paper prohibition sets are n(n-1)-sized and CDG-acyclic."""
    results = benchmark.pedantic(
        sufficiency_for_dimensions, rounds=1, iterations=1
    )
    assert all(results.values())
    text = "== Theorem 6: the paper's quarter-prohibitions are sufficient ==\n" + "\n".join(
        f"n={n}: all three prohibition sets deadlock free = {ok}"
        for n, ok in results.items()
    )
    print("\n" + text)
    record("thm6_sufficiency", text)
