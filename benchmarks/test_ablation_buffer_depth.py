"""Ablation: input-buffer depth (the paper fixes it at 1 flit).

Deeper buffers decouple worms from the channels behind them, so latency
at a fixed load drops and sustainable throughput rises — quantifying how
much of wormhole's fragility is the single-flit buffering.
"""

from repro.routing import WestFirst
from repro.simulation import SimulationConfig, WormholeSimulator
from repro.topology import Mesh2D
from repro.traffic import UniformPattern


DEPTHS = (1, 2, 4, 8)


def sweep_depths():
    mesh = Mesh2D(16, 16)
    rows = []
    for depth in DEPTHS:
        config = SimulationConfig(
            offered_load=1.5,
            warmup_cycles=1_500,
            measure_cycles=5_000,
            buffer_depth=depth,
            seed=31,
        )
        result = WormholeSimulator(
            WestFirst(mesh), UniformPattern(mesh), config
        ).run()
        rows.append((depth, result))
    return rows


def test_ablation_buffer_depth(benchmark, record):
    rows = benchmark.pedantic(sweep_depths, rounds=1, iterations=1)
    lines = [
        "== Ablation: input buffer depth (west-first, uniform, load 1.5) ==",
        "depth  latency(us)  throughput(fl/us)",
    ]
    for depth, result in rows:
        lines.append(
            f"{depth:5d} {result.avg_latency_us:12.2f} "
            f"{result.throughput_flits_per_us:18.1f}"
        )
    text = "\n".join(lines)
    print("\n" + text)
    record("ablation_buffer_depth", text)
    # Deeper buffers never hurt latency at this load, and the extremes
    # differ measurably.
    latencies = {d: r.avg_latency_us for d, r in rows}
    assert latencies[8] < latencies[1]
