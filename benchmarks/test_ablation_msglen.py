"""Ablation: message-length mix (the paper fixes 10-or-200 flits with
equal probability).

Wormhole blocking chains scale with worm length, so the mix strongly
shapes the latency/saturation picture; this bench quantifies it at a
fixed offered load in flits."""

from repro.routing import XY
from repro.simulation import SimulationConfig, WormholeSimulator
from repro.topology import Mesh2D
from repro.traffic import UniformPattern


MIXES = [
    ("paper 10/200", (10, 200)),
    ("short 10", (10,)),
    ("medium 105", (105,)),
    ("long 200", (200,)),
]


def sweep_mixes():
    mesh = Mesh2D(16, 16)
    rows = []
    for label, lengths in MIXES:
        config = SimulationConfig(
            offered_load=1.2,
            warmup_cycles=1_500,
            measure_cycles=5_000,
            message_lengths=lengths,
            seed=33,
        )
        result = WormholeSimulator(
            XY(mesh), UniformPattern(mesh), config
        ).run()
        rows.append((label, result))
    return rows


def test_ablation_message_lengths(benchmark, record):
    rows = benchmark.pedantic(sweep_mixes, rounds=1, iterations=1)
    lines = [
        "== Ablation: message length mix (xy, uniform, load 1.2 fl/us/node) ==",
        "mix            latency(us)  net-latency(us)  throughput(fl/us)",
    ]
    for label, result in rows:
        lines.append(
            f"{label:14s} {result.avg_latency_us:11.2f} "
            f"{result.avg_network_latency_us:16.2f} "
            f"{result.throughput_flits_per_us:18.1f}"
        )
    text = "\n".join(lines)
    print("\n" + text)
    record("ablation_msglen", text)
    by_label = {label: r for label, r in rows}
    # Short worms pipeline better: far lower latency at equal flit load.
    assert (
        by_label["short 10"].avg_latency_us
        < by_label["long 200"].avg_latency_us
    )
