"""Extension: fault tolerance, the paper's recurring motivation for
adaptive routing, quantified.

For increasing numbers of random channel faults on an 8x8 mesh, measure
the fraction of source-destination pairs each algorithm can still route
(static reachability over the routing relation).  The partially adaptive
algorithms survive substantially more faults than deterministic xy."""

import random

from repro.routing import NegativeFirst, WestFirst, XY
from repro.topology import Mesh2D
from repro.verification import mean_survival, random_fault_trials


FAULT_COUNTS = (1, 2, 4, 8)


def run_trials():
    mesh = Mesh2D(8, 8)
    table = {}
    for factory in (XY, WestFirst, NegativeFirst):
        algorithm = factory(mesh)
        row = []
        for num_faults in FAULT_COUNTS:
            reports = random_fault_trials(
                algorithm,
                num_faults=num_faults,
                trials=4,
                sample_pairs=150,
                rng=random.Random(100 + num_faults),
            )
            row.append(mean_survival(reports))
        table[algorithm.name] = row
    return table


def test_ext_fault_tolerance(benchmark, record):
    table = benchmark.pedantic(run_trials, rounds=1, iterations=1)
    header = "algorithm        " + "".join(
        f"  {n:2d} faults" for n in FAULT_COUNTS
    )
    lines = [
        "== Extension: pair survival under random channel faults (8x8 mesh) ==",
        header,
    ]
    for name, row in table.items():
        lines.append(
            f"{name:16s}" + "".join(f"  {frac:9.3f}" for frac in row)
        )
    text = "\n".join(lines)
    print("\n" + text)
    record("ext_fault_tolerance", text)

    # Adaptive beats deterministic at every fault count (aggregate).
    for adaptive in ("west-first", "negative-first"):
        assert sum(table[adaptive]) > sum(table["xy"])
    # More faults never increase survival.
    for row in table.values():
        assert all(a >= b - 0.05 for a, b in zip(row, row[1:]))
