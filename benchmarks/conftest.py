"""Shared fixtures for the benchmark suite.

Every benchmark regenerates one paper artifact (figure, table, or claim)
and records its series to ``benchmarks/results/<name>.txt`` so the rows
survive pytest's output capture.  The simulation presets are reduced but
topology-faithful (the paper's 256-node networks); pass
``--benchmark-full-figures`` for the denser FULL preset.
"""

import os

import pytest

from repro.analysis import FAST, FULL, ParallelSweepRunner

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def pytest_addoption(parser):
    parser.addoption(
        "--benchmark-full-figures",
        action="store_true",
        default=False,
        help="use the FULL experiment preset (denser grids, longer runs)",
    )
    parser.addoption(
        "--benchmark-jobs",
        type=int,
        default=1,
        help="worker processes for the figure sweeps (default 1: serial)",
    )


@pytest.fixture(scope="session")
def preset(request):
    if request.config.getoption("--benchmark-full-figures"):
        return FULL
    return FAST


@pytest.fixture(scope="session")
def runner(request):
    """Experiment runner for the figure benchmarks.

    Caching is deliberately disabled: a benchmark that serves results
    from disk would report the cache's speed, not the simulator's.
    ``--benchmark-jobs N`` parallelises the sweep's operating points
    (the recorded wall-clock then measures the runner, not one core).
    """
    jobs = request.config.getoption("--benchmark-jobs")
    return ParallelSweepRunner(jobs=jobs, cache=None)


@pytest.fixture(scope="session")
def record():
    """Writer: record('fig13', text) -> benchmarks/results/fig13.txt."""
    os.makedirs(RESULTS_DIR, exist_ok=True)

    def _record(name: str, text: str) -> str:
        path = os.path.join(RESULTS_DIR, f"{name}.txt")
        with open(path, "w") as fh:
            fh.write(text + "\n")
        return path

    return _record
