"""Figure 14: matrix-transpose traffic in a 16x16 mesh.

Paper shape: the partially adaptive algorithms have lower latencies at
high load than xy.  (The paper further reports ~2x sustainable
throughput for the adaptive algorithms; our simulator reproduces the
ordering and the latency gap, with a smaller throughput factor for
minimal negative-first — see EXPERIMENTS.md for the discussion.)
"""

from repro.analysis import adaptive_vs_nonadaptive, figure14_mesh_transpose, format_figure


def test_fig14_mesh_transpose(benchmark, preset, record, runner):
    series = benchmark.pedantic(
        figure14_mesh_transpose,
        args=(preset,),
        kwargs={"runner": runner},
        rounds=1,
        iterations=1,
    )
    ratio = adaptive_vs_nonadaptive(series)
    text = format_figure(
        "Figure 14: matrix-transpose traffic, 16x16 mesh",
        series,
        note=(
            f"best adaptive ({ratio.best_adaptive}) vs xy sustainable "
            f"throughput ratio: {ratio.ratio and round(ratio.ratio, 2)}"
        ),
    )
    print("\n" + text)
    record("fig14_mesh_transpose", text)

    by_name = {s.algorithm: s for s in series}
    # Latency ordering at the highest common load: west-first and
    # north-last beat xy under transpose.
    top = max(r.offered_load for r in by_name["xy"].results)

    def latency_at_top(name):
        result = [r for r in by_name[name].results if r.offered_load == top][0]
        return result.avg_latency_us

    assert latency_at_top("west-first") < latency_at_top("xy")
    assert latency_at_top("north-last") < latency_at_top("xy")
    # The adaptive algorithms sustain at least as much as xy.
    assert ratio.ratio is None or ratio.ratio >= 1.0
