"""Ablation: minimal vs nonminimal turn-model routing.

Section 3.4 notes that nonminimal routing restores adaptiveness exactly
where the minimal algorithms are deterministic (e.g. negative-first on
mixed-sign pairs — the transpose workload).  The paper's simulations are
minimal; this bench measures what a bounded number of escape (misroute)
hops buys."""

from repro.routing import NegativeFirst, NonminimalPCube, PCube
from repro.simulation import SimulationConfig, WormholeSimulator
from repro.topology import Hypercube, Mesh2D
from repro.traffic import HypercubeTransposePattern, MeshTransposePattern


def sweep_misroutes():
    mesh = Mesh2D(16, 16)
    rows = []
    for limit in (0, 2, 6):
        config = SimulationConfig(
            offered_load=1.5,
            warmup_cycles=1_500,
            measure_cycles=5_000,
            misroute_limit=limit,
            seed=34,
        )
        result = WormholeSimulator(
            NegativeFirst(mesh), MeshTransposePattern(mesh), config
        ).run()
        rows.append((f"negative-first misroute<={limit}", result))
    cube = Hypercube(8)
    for algorithm, limit in ((PCube(cube), 0), (NonminimalPCube(cube), 4)):
        config = SimulationConfig(
            offered_load=2.0,
            warmup_cycles=1_500,
            measure_cycles=5_000,
            misroute_limit=limit,
            seed=34,
        )
        result = WormholeSimulator(
            algorithm, HypercubeTransposePattern(cube), config
        ).run()
        rows.append((f"{algorithm.name} misroute<={limit}", result))
    return rows


def test_ablation_nonminimal(benchmark, record):
    rows = benchmark.pedantic(sweep_misroutes, rounds=1, iterations=1)
    lines = [
        "== Ablation: minimal vs nonminimal (transpose workloads) ==",
        "configuration                      latency(us)  thr(fl/us)  misroutes/pkt",
    ]
    for label, result in rows:
        per_packet = (
            result.total_misroutes / result.delivered_packets
            if result.delivered_packets
            else 0.0
        )
        lines.append(
            f"{label:34s} {result.avg_latency_us:11.2f} "
            f"{result.throughput_flits_per_us:11.1f}  {per_packet:12.3f}"
        )
    text = "\n".join(lines)
    print("\n" + text)
    record("ablation_nonminimal", text)
    # Minimal runs take no misroutes; nonminimal runs are allowed to.
    by_label = dict(rows)
    assert by_label["negative-first misroute<=0"].total_misroutes == 0
    assert all(not r.deadlock for _, r in rows)
