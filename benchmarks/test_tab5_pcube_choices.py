"""The Section 5 table: p-cube routing choices along the example path in
a binary 10-cube (exact reproduction, including the nonminimal '+k'
column)."""

from repro.analysis import section5_pcube_table
from repro.core import s_fully_adaptive, s_pcube
from repro.topology import Hypercube


PAPER_ROWS = [
    ("1011010100", 3, 2, 2, "source"),
    ("1011010000", 2, 2, 9, "phase 1"),
    ("0011010000", 1, 2, 6, "phase 1"),
    ("0010010000", 3, 0, 5, "phase 2"),
    ("0010110000", 2, 0, 0, "phase 2"),
    ("0010110001", 1, 0, 3, "phase 2"),
    ("0010111001", 0, 0, None, "destination"),
]


def test_tab5_pcube_choice_table(benchmark, record):
    rows = benchmark(section5_pcube_table)
    got = [
        (r.address, r.minimal_choices, r.nonminimal_extra,
         r.dimension_taken, r.phase)
        for r in rows
    ]
    assert got == PAPER_ROWS

    lines = ["== Section 5 table: p-cube choices, 10-cube =="]
    lines.append(f"{'address':>12s} {'choices':>8s} {'dim':>4s}  comment")
    for addr, minimal, extra, dim, phase in got:
        plus = f"(+{extra})" if extra else "    "
        lines.append(
            f"{addr:>12s} {minimal:>4d}{plus:<4s} "
            f"{'' if dim is None else dim:>4}  {phase}"
        )
    cube = Hypercube(10)
    src = cube.node_from_address_str("1011010100")
    dst = cube.node_from_address_str("0010111001")
    lines.append(
        f"S_p-cube = {s_pcube(cube, src, dst)} of "
        f"S_f = {s_fully_adaptive(cube, src, dst)} shortest paths "
        f"(paper: 36 of 720)"
    )
    text = "\n".join(lines)
    print("\n" + text)
    record("tab5_pcube_choices", text)
    assert s_pcube(cube, src, dst) == 36
